"""Per-stage memory-configuration sweep (reproduces Fig. 10).

Each line buffer in an algorithm may independently be implemented as a plain
dual-port memory (DP) or as a dual-port memory with line coalescing (DPLC).
The sweep enumerates every combination, compiles the pipeline for each, and
reports area and power so a designer (or the benchmark harness) can extract
the Pareto frontier.

Only buffers where coalescing can actually change the design (at least two
line slots and a block large enough for two lines) are swept; the rest are
fixed to DP, which keeps the sweep size at ``2^k`` for the ``k`` buffers that
matter — the paper's example of four configurable stages giving 16 designs.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.core.compiler import CompiledAccelerator, compile_pipeline
from repro.core.scheduler import SchedulerOptions
from repro.errors import ReproError
from repro.estimate.report import AcceleratorReport, accelerator_report
from repro.estimate.sram_model import SramTechModel
from repro.ir.dag import PipelineDAG
from repro.memory.spec import MemorySpec, asic_dual_port


@dataclass
class DesignPoint:
    """One explored memory configuration and its evaluated metrics."""

    configuration: dict[str, str]  # buffer name -> "DP" | "DPLC"
    accelerator: CompiledAccelerator
    report: AcceleratorReport
    label: str = ""
    metadata: dict[str, float] = field(default_factory=dict)

    @property
    def area_mm2(self) -> float:
        return self.report.memory_area_mm2

    @property
    def power_mw(self) -> float:
        return self.report.memory_power_mw

    @property
    def coalesced_stages(self) -> int:
        return sum(1 for value in self.configuration.values() if value == "DPLC")


def _configurable_buffers(
    dag: PipelineDAG, image_width: int, image_height: int, memory_spec: MemorySpec
) -> list[str]:
    """Buffers whose DP/DPLC choice can change the design."""
    if memory_spec.coalescing_factor(image_width) <= 1:
        return []
    baseline = compile_pipeline(
        dag, image_width=image_width, image_height=image_height, memory_spec=memory_spec
    )
    return [
        producer
        for producer, config in baseline.schedule.line_buffers.items()
        if config.lines >= 2
    ]


def sweep_memory_configurations(
    dag: PipelineDAG,
    *,
    image_width: int,
    image_height: int,
    memory_spec: MemorySpec | None = None,
    tech: SramTechModel | None = None,
    max_designs: int = 1024,
    sizing: str = "custom",
) -> list[DesignPoint]:
    """Compile every DP/DPLC combination and return the evaluated design points.

    The DSE models an ASIC flow in which memory macros are compiled per design
    (``sizing="custom"``): a DPLC buffer uses fewer but larger macros, which
    lowers area but raises per-access energy — the trade-off of Fig. 10.
    """
    memory_spec = memory_spec or asic_dual_port()
    configurable = _configurable_buffers(dag, image_width, image_height, memory_spec)
    num_designs = 2 ** len(configurable)
    if num_designs > max_designs:
        raise ReproError(
            f"Sweep would produce {num_designs} designs for {len(configurable)} configurable "
            f"buffers (limit {max_designs})"
        )

    points: list[DesignPoint] = []
    for choices in itertools.product(("DP", "DPLC"), repeat=len(configurable)):
        configuration = dict(zip(configurable, choices))
        coalesce_any = any(choice == "DPLC" for choice in choices)
        per_stage = {name: (choice == "DPLC") for name, choice in configuration.items()}
        options = SchedulerOptions(
            coalescing=coalesce_any,
            coalescing_policy="all",
            per_stage_coalescing=per_stage,
        )
        accelerator = compile_pipeline(
            dag,
            image_width=image_width,
            image_height=image_height,
            memory_spec=memory_spec,
            options=options,
        )
        report = accelerator_report(accelerator.schedule, tech, sizing=sizing)
        label = "+".join(
            name for name, choice in configuration.items() if choice == "DPLC"
        ) or "all-DP"
        points.append(
            DesignPoint(
                configuration=configuration,
                accelerator=accelerator,
                report=report,
                label=label,
            )
        )
    return points
