"""Core optimizer: ILP-based line-buffered pipeline generation (paper Sec. 5-6)."""

from repro.core.schedule import PipelineSchedule
from repro.core.scheduler import SchedulerOptions, schedule_pipeline
from repro.core.coalescing import coalesce_dag, coalescing_factors
from repro.core.compiler import CompiledAccelerator, compile_pipeline

__all__ = [
    "PipelineSchedule",
    "SchedulerOptions",
    "schedule_pipeline",
    "coalesce_dag",
    "coalescing_factors",
    "CompiledAccelerator",
    "compile_pipeline",
]
