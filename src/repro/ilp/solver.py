"""Solver facade: pick a backend and solve an ILP model.

``backend`` may be:

* ``"highs"`` — SciPy's HiGHS MILP solver (fast, default when available);
* ``"python"`` — the pure-Python branch-and-bound over the simplex engine;
* ``"race"`` — run both concurrently and take the first finisher
  (:func:`solve_racing`); degrades to ``"python"`` when SciPy is absent;
* ``"auto"`` — the ``REPRO_ILP_BACKEND`` environment variable when set,
  otherwise HiGHS when importable, otherwise the Python backend.

Racing semantics
----------------
Both backends are exact, so the first finisher's result *is* the answer —
including INFEASIBLE/UNBOUNDED outcomes.  HiGHS runs a C solve that releases
the GIL; the Python branch-and-bound checks a cancellation event between
nodes, so the loser concedes almost immediately once a winner is declared.
The enclosing ``ilp`` trace span records ``race_winner`` and, when the loser
had already conceded by the time the result was assembled,
``race_margin_seconds`` (how much longer the loser ran before giving up).
A warm start is handed to the Python contestant only; HiGHS solves cold —
exactness is unaffected either way.
"""

from __future__ import annotations

import os
import threading
import time

from repro.errors import InfeasibleError, SolverCancelled, SolverError, UnboundedError
from repro.ilp import highs
from repro.ilp.branch_and_bound import solve_branch_and_bound
from repro.ilp.model import Model, SolveResult, SolveStatus, WarmStart
from repro.trace import span_attr, trace_span

#: Environment override consulted by ``backend="auto"`` — lets CI pin the
#: whole suite to one backend (e.g. ``REPRO_ILP_BACKEND=python`` to exercise
#: the SciPy-free path) without threading an option through every caller.
BACKEND_ENV_VAR = "REPRO_ILP_BACKEND"

_KNOWN_BACKENDS = ("auto", "python", "highs", "race")


def available_backends() -> list[str]:
    """Names of the backends usable in this environment."""
    backends = ["python"]
    if highs.is_available():
        backends.insert(0, "highs")
        backends.append("race")
    return backends


def resolve_backend(backend: str = "auto") -> str:
    """Resolve ``"auto"`` (env var, then availability) to a concrete backend."""
    if backend == "auto":
        env = os.environ.get(BACKEND_ENV_VAR, "").strip().lower()
        if env:
            if env not in _KNOWN_BACKENDS:
                raise SolverError(
                    f"{BACKEND_ENV_VAR}={env!r} is not one of {_KNOWN_BACKENDS}"
                )
            backend = env
    if backend == "auto":
        backend = "highs" if highs.is_available() else "python"
    return backend


def solve(
    model: Model,
    backend: str = "auto",
    *,
    warm_start: WarmStart | None = None,
    raise_on_failure: bool = False,
) -> SolveResult:
    """Solve ``model`` and return a :class:`SolveResult`.

    With ``raise_on_failure=True``, infeasible/unbounded outcomes raise
    :class:`InfeasibleError` / :class:`UnboundedError` instead of being
    returned as statuses.  ``warm_start`` seeds the Python branch-and-bound
    (directly or as the racing contestant); the HiGHS backend ignores it.
    """
    backend = resolve_backend(backend)

    with trace_span("ilp", backend=backend):
        if backend == "race":
            result = _solve_race(model, warm_start=warm_start)
        elif backend == "highs":
            result = highs.solve_highs(model)
        elif backend == "python":
            result = solve_branch_and_bound(model, warm_start=warm_start)
        else:
            raise SolverError(f"Unknown ILP backend {backend!r}")
        span_attr(
            status=result.status.value,
            lp_iterations=result.iterations,
            bnb_pruned=result.pruned,
        )
        if result.warm_start != "none":
            span_attr(warm_start=result.warm_start)

    if raise_on_failure:
        if result.status is SolveStatus.INFEASIBLE:
            raise InfeasibleError(f"Model {model.name!r} is infeasible ({result.message})")
        if result.status is SolveStatus.UNBOUNDED:
            raise UnboundedError(f"Model {model.name!r} is unbounded ({result.message})")
        if result.status is SolveStatus.ERROR:
            raise SolverError(f"Backend {backend!r} failed on model {model.name!r}: {result.message}")
    return result


def solve_racing(
    model: Model,
    *,
    warm_start: WarmStart | None = None,
    raise_on_failure: bool = False,
) -> SolveResult:
    """Race the Python and HiGHS backends; equivalent to ``backend="race"``."""
    return solve(model, "race", warm_start=warm_start, raise_on_failure=raise_on_failure)


def _solve_race(model: Model, warm_start: WarmStart | None = None) -> SolveResult:
    if not highs.is_available():
        # Clean degradation (the racing API stays callable without SciPy):
        # a single-contestant race is just the Python solve.
        result = solve_branch_and_bound(model, warm_start=warm_start)
        span_attr(race_winner="python", race_contestants=1)
        return result

    cancel = threading.Event()
    lock = threading.Lock()
    done = threading.Event()
    results: dict[str, SolveResult] = {}
    errors: dict[str, Exception] = {}
    seconds: dict[str, float] = {}
    winner_box: dict[str, str] = {}

    def contend(name, runner):
        begun = time.perf_counter()
        try:
            result = runner()
        except SolverCancelled:
            with lock:
                seconds[name] = time.perf_counter() - begun
            return
        except Exception as exc:  # backend failure: let the other contestant win
            with lock:
                seconds[name] = time.perf_counter() - begun
                errors[name] = exc
                if len(errors) == 2:
                    done.set()
            return
        with lock:
            seconds[name] = time.perf_counter() - begun
            results[name] = result
            if "winner" not in winner_box:
                winner_box["winner"] = name
                cancel.set()
            done.set()

    python_thread = threading.Thread(
        target=contend,
        args=("python", lambda: solve_branch_and_bound(model, warm_start=warm_start, cancel=cancel)),
        name="ilp-race-python",
        daemon=True,
    )
    highs_thread = threading.Thread(
        target=contend,
        args=("highs", lambda: highs.solve_highs(model)),
        name="ilp-race-highs",
        daemon=True,
    )
    python_thread.start()
    highs_thread.start()
    done.wait()

    winner = winner_box.get("winner")
    if winner is None:
        failures = "; ".join(f"{name}: {exc}" for name, exc in sorted(errors.items()))
        raise SolverError(f"All racing backends failed on {model.name!r} ({failures})")
    if winner == "highs":
        # The Python loser concedes at its next node check; join it briefly so
        # the margin (time-to-concede) is usually observable.  The HiGHS C
        # call cannot be interrupted, so when Python wins the daemon thread is
        # left to finish on its own.
        python_thread.join(timeout=1.0)

    with lock:
        result = results[winner]
        loser = "python" if winner == "highs" else "highs"
        margin = seconds[loser] - seconds[winner] if loser in seconds else None
        winner_seconds = seconds[winner]

    result.backend = f"race:{winner}"
    span_attr(race_winner=winner, race_winner_seconds=round(winner_seconds, 6))
    if margin is not None:
        span_attr(race_margin_seconds=round(margin, 6))
    return result
