"""End-to-end integration tests: DSL -> schedule -> simulation -> RTL."""

import numpy as np
import pytest

from repro.algorithms import ALGORITHM_NAMES, build_algorithm
from repro.baselines import generate_baseline
from repro.core.compiler import compile_pipeline
from repro.core.scheduler import SchedulerOptions
from repro.dsl.parser import parse_pipeline
from repro.estimate.report import accelerator_report
from repro.rtl.lint import lint_verilog
from repro.sim.cycle import simulate_schedule
from repro.sim.functional import run_functional

W, H = 64, 48

UNSHARP_DSL = """
input K0;
blur_v = im(x,y) (K0(x,y-2) + K0(x,y-1)*4 + K0(x,y)*6 + K0(x,y+1)*4 + K0(x,y+2)) / 16 end
blur_h = im(x,y) (blur_v(x-2,y) + blur_v(x-1,y)*4 + blur_v(x,y)*6 + blur_v(x+1,y)*4 + blur_v(x+2,y)) / 16 end
output sharp = im(x,y) clamp(K0(x,y) + (K0(x,y) - blur_h(x,y)) * 2, 0, 255) end
"""


class TestTextualDslFlow:
    def test_parse_compile_simulate(self):
        dag = parse_pipeline(UNSHARP_DSL, name="unsharp-dsl")
        accelerator = compile_pipeline(dag, image_width=W, image_height=H)
        report = simulate_schedule(accelerator.schedule)
        assert report.ok
        assert report.steady_state_throughput == pytest.approx(1.0, abs=0.05)

    def test_parse_and_execute_functionally(self):
        dag = parse_pipeline(UNSHARP_DSL, name="unsharp-dsl")
        rng = np.random.default_rng(5)
        image = rng.integers(0, 256, size=(H, W)).astype(float)
        output = run_functional(dag, image).output()
        assert output.min() >= 0 and output.max() <= 255

    def test_verilog_from_dsl_lints(self):
        dag = parse_pipeline(UNSHARP_DSL, name="unsharp-dsl")
        accelerator = compile_pipeline(dag, image_width=W, image_height=H)
        assert lint_verilog(accelerator.generate_verilog()).ok


class TestAllAlgorithmsAllGenerators:
    @pytest.mark.parametrize("algorithm", ALGORITHM_NAMES)
    def test_imagen_schedules_are_legal(self, algorithm):
        dag = build_algorithm(algorithm)
        schedule = compile_pipeline(dag, image_width=W, image_height=H).schedule
        report = simulate_schedule(schedule)
        assert report.ok, report.violations

    @pytest.mark.parametrize("algorithm", ALGORITHM_NAMES)
    def test_coalesced_schedules_are_legal(self, algorithm):
        dag = build_algorithm(algorithm)
        schedule = compile_pipeline(
            dag, image_width=W, image_height=H, coalescing=True
        ).schedule
        report = simulate_schedule(schedule)
        assert report.ok, report.violations

    @pytest.mark.parametrize("algorithm", ALGORITHM_NAMES)
    @pytest.mark.parametrize("baseline", ["fixynn", "darkroom"])
    def test_baseline_schedules_are_legal(self, algorithm, baseline):
        dag = build_algorithm(algorithm)
        schedule = generate_baseline(baseline, dag, W, H)
        report = simulate_schedule(schedule)
        assert report.ok, report.violations

    @pytest.mark.parametrize("algorithm", ALGORITHM_NAMES)
    def test_linearization_preserves_semantics(self, algorithm):
        from repro.baselines.darkroom import linearize_dag

        dag = build_algorithm(algorithm)
        rng = np.random.default_rng(3)
        image = rng.integers(0, 256, size=(H, W)).astype(float)
        original = run_functional(dag, image).output()
        rewritten = run_functional(linearize_dag(dag), image).output()
        np.testing.assert_allclose(original, rewritten)

    @pytest.mark.parametrize("algorithm", ["harris-m", "canny-m", "xcorr-m"])
    def test_paper_orderings_hold(self, algorithm):
        dag = build_algorithm(algorithm)
        reports = {
            "ours": accelerator_report(compile_pipeline(dag, image_width=W, image_height=H).schedule),
            "ours+lc": accelerator_report(
                compile_pipeline(dag, image_width=W, image_height=H, coalescing=True).schedule
            ),
            "fixynn": accelerator_report(generate_baseline("fixynn", dag, W, H)),
            "darkroom": accelerator_report(generate_baseline("darkroom", dag, W, H)),
        }
        assert reports["ours"].sram_kbytes <= reports["darkroom"].sram_kbytes
        assert reports["ours"].sram_kbytes < reports["fixynn"].sram_kbytes
        assert reports["ours+lc"].sram_kbytes <= reports["ours"].sram_kbytes
        assert reports["ours"].memory_power_mw < reports["fixynn"].memory_power_mw


class TestIlpBackendsAgree:
    def test_backends_reach_same_objective(self):
        dag = build_algorithm("unsharp-m")
        highs = compile_pipeline(
            dag, image_width=W, image_height=H, options=SchedulerOptions(backend="highs")
        )
        python = compile_pipeline(
            dag, image_width=W, image_height=H, options=SchedulerOptions(backend="python")
        )
        assert highs.schedule.solver_stats["objective"] == pytest.approx(
            python.schedule.solver_stats["objective"]
        )
        assert highs.schedule.total_blocks == python.schedule.total_blocks


class TestRtlForAlgorithms:
    @pytest.mark.parametrize("algorithm", ["unsharp-m", "harris-s", "denoise-m"])
    def test_generated_verilog_lints(self, algorithm):
        dag = build_algorithm(algorithm)
        accelerator = compile_pipeline(dag, image_width=W, image_height=H)
        report = lint_verilog(accelerator.generate_verilog())
        assert report.ok, report.errors
