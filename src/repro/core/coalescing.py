"""Line-coalescing optimization (paper Sec. 6, Algorithm 1).

Coalescing places up to ``P`` (port count) consecutive line-buffer lines in a
single memory block, provided the block is large enough.  The paper expresses
this as a DAG rewrite: a consumer with stencil height ``SH`` becomes
``K = min(P, SH)`` *virtual* stages, each reading the lines that fall in one
block of the coalesced buffer; virtual stages of the same physical stage must
share a start cycle.

Two entry points are provided:

* :func:`coalescing_factors` — the per-producer coalescing factor actually
  achievable for a given image width and memory spec (what the scheduler and
  allocator consume).
* :func:`coalesce_dag` — the faithful Algorithm-1 rewrite, producing the
  virtual-stage DAG plus the grouping metadata (used by the RTL generator to
  assign per-virtual-stage read offsets, and by tests that validate the
  transformation itself).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.access import ceil_div
from repro.ir.dag import PipelineDAG, Stage
from repro.ir.stencil import StencilWindow
from repro.ir.traversal import topological_order
from repro.memory.spec import MemorySpec


def coalescing_factors(
    dag: PipelineDAG, image_width: int, spec: MemorySpec
) -> dict[str, int]:
    """Achievable lines-per-block for each producer's line buffer.

    The factor is limited by the spec's ports and block capacity
    (``spec.coalescing_factor``).  Producers with no consumers get factor 1.
    The final factor is further clamped to the buffer's actual line count by
    the allocator (coalescing a one-line buffer is a no-op).
    """
    base = spec.coalescing_factor(image_width)
    factors: dict[str, int] = {}
    for producer in dag.stage_names():
        edges = dag.out_edges(producer)
        factors[producer] = base if edges and base > 1 else 1
    return factors


@dataclass
class VirtualGroup:
    """Bookkeeping for one physical consumer split into virtual stages."""

    physical: str
    producer: str
    virtual_stages: list[str] = field(default_factory=list)
    #: per virtual stage: (line offset within the window, stencil height in lines)
    line_ranges: dict[str, tuple[int, int]] = field(default_factory=dict)


@dataclass
class CoalescedDAG:
    """Result of the Algorithm-1 rewrite."""

    dag: PipelineDAG
    groups: list[VirtualGroup]
    factors: dict[str, int]

    def virtual_groups_of(self, physical: str) -> list[VirtualGroup]:
        return [g for g in self.groups if g.physical == physical]

    def synchronized_sets(self) -> list[list[str]]:
        """Sets of stage names that must share one start cycle."""
        sets: dict[str, list[str]] = {}
        for group in self.groups:
            sets.setdefault(group.physical, [group.physical])
        for group in self.groups:
            sets[group.physical].extend(
                v for v in group.virtual_stages if v not in sets[group.physical]
            )
        return [members for members in sets.values() if len(members) > 1]


def _split_heights(stencil_height: int, factor: int) -> list[int]:
    """Partition a stencil of ``stencil_height`` lines into per-block heights.

    With a coalescing factor ``F`` the window's lines group into blocks of
    ``F`` consecutive lines; the first groups are full (height ``F``) and the
    last group holds the remainder (the paper's example: SH=3, F=2 -> [2, 1]).
    """
    heights = []
    remaining = stencil_height
    while remaining > 0:
        take = min(factor, remaining)
        heights.append(take)
        remaining -= take
    return heights


def coalesce_dag(
    dag: PipelineDAG, image_width: int, spec: MemorySpec
) -> CoalescedDAG:
    """Rewrite the DAG per Algorithm 1 of the paper.

    Every edge whose producer's buffer is coalesced with factor ``F > 1`` and
    whose stencil height exceeds ``F`` has its consumer split (with respect to
    that producer) into ``ceil(SH / F)`` virtual readers; each virtual reader
    keeps the original consumer's producers/consumers, and all virtual
    readers of one physical stage are recorded as requiring a common start
    cycle.  Producers, stencil windows of untouched edges and input/output
    roles are preserved.
    """
    factors = coalescing_factors(dag, image_width, spec)
    if all(f <= 1 for f in factors.values()):
        return CoalescedDAG(dag=dag.copy(f"{dag.name}-coalesced"), groups=[], factors=factors)

    rewritten = PipelineDAG(f"{dag.name}-coalesced")
    for stage in dag.stages():
        rewritten.add_stage(
            Stage(
                name=stage.name,
                is_input=stage.is_input,
                is_output=stage.is_output,
                expression=stage.expression,
                metadata=dict(stage.metadata),
            )
        )

    groups: list[VirtualGroup] = []
    for node in topological_order(dag):
        for edge in dag.out_edges(node):
            factor = factors[edge.producer]
            height = edge.window.height
            if factor <= 1 or height <= factor:
                rewritten.add_edge(edge.producer, edge.consumer, edge.window)
                continue
            group = VirtualGroup(physical=edge.consumer, producer=edge.producer)
            offset = 0
            for split_index, split_height in enumerate(_split_heights(height, factor)):
                if split_index == 0:
                    # The physical stage itself plays the role of the first
                    # virtual reader so downstream consumers stay connected.
                    virtual_name = edge.consumer
                else:
                    virtual_name = f"{edge.consumer}__v{split_index}__{edge.producer}"
                    rewritten.add_stage(
                        Stage(
                            name=virtual_name,
                            is_input=False,
                            is_output=False,
                            expression=None,
                            virtual_of=edge.consumer,
                        )
                    )
                    # Virtual readers inherit the physical stage's consumers so
                    # the graph stays connected for validation purposes.
                    for downstream in dag.out_edges(edge.consumer):
                        rewritten.add_edge(
                            virtual_name, downstream.consumer, StencilWindow.point()
                        )
                window = StencilWindow.from_extent(edge.window.width, split_height)
                rewritten.add_edge(edge.producer, virtual_name, window)
                group.virtual_stages.append(virtual_name)
                group.line_ranges[virtual_name] = (offset, split_height)
                offset += split_height
            groups.append(group)

    return CoalescedDAG(dag=rewritten, groups=groups, factors=factors)
