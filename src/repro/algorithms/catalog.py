"""Catalog of the evaluation algorithms (paper Table 3)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.algorithms.canny import build_canny_m, build_canny_s
from repro.algorithms.denoise import build_denoise_m
from repro.algorithms.harris import build_harris_m, build_harris_s
from repro.algorithms.temporal import build_frame_diff_m, build_temporal_denoise_m
from repro.algorithms.unsharp import build_unsharp_m
from repro.algorithms.xcorr import build_xcorr_m
from repro.errors import ReproError
from repro.ir.dag import PipelineDAG


@dataclass(frozen=True)
class AlgorithmInfo:
    """One row of Table 3."""

    name: str
    description: str
    builder: Callable[[], PipelineDAG]
    expected_stages: int
    expected_multi_consumer_stages: int

    def build(self) -> PipelineDAG:
        return self.builder()


_CATALOG: dict[str, AlgorithmInfo] = {
    info.name: info
    for info in (
        AlgorithmInfo("canny-s", "Canny edge detection (single-consumer)", build_canny_s, 9, 0),
        AlgorithmInfo("canny-m", "Canny edge detection (multi-consumer)", build_canny_m, 10, 1),
        AlgorithmInfo("harris-s", "Harris corner detection (single-consumer)", build_harris_s, 7, 0),
        AlgorithmInfo("harris-m", "Harris corner detection (multi-consumer)", build_harris_m, 7, 1),
        AlgorithmInfo("unsharp-m", "Unsharp masking", build_unsharp_m, 5, 1),
        AlgorithmInfo("xcorr-m", "Cross correlation", build_xcorr_m, 3, 1),
        AlgorithmInfo("denoise-m", "Image denoise", build_denoise_m, 5, 2),
    )
}

#: The built-in Table-3 evaluation suite.  Frozen at import time: algorithms
#: registered later via :func:`register_algorithm` are resolvable through
#: :func:`build_algorithm` / :func:`algorithm_names` but do not join the
#: benchmark suite that iterates this tuple.
ALGORITHM_NAMES: tuple[str, ...] = tuple(_CATALOG)

# Temporal extension suite: in the live catalog (buildable/compilable by
# name), but added after the freeze so the paper's Table 3 stays spatial-only.
_CATALOG.update(
    {
        info.name: info
        for info in (
            AlgorithmInfo(
                "temporal-denoise-m",
                "Spatio-temporal denoise (3-frame average)",
                build_temporal_denoise_m,
                4,
                1,
            ),
            AlgorithmInfo(
                "frame-diff-m",
                "Frame differencing / motion mask",
                build_frame_diff_m,
                4,
                1,
            ),
        )
    }
)

#: Names of the temporal extension suite (mirrors
#: :data:`repro.algorithms.temporal.TEMPORAL_ALGORITHM_NAMES`).
TEMPORAL_ALGORITHM_NAMES: tuple[str, ...] = tuple(
    name for name in _CATALOG if name not in ALGORITHM_NAMES
)


def algorithm_names() -> tuple[str, ...]:
    """Live view of every algorithm currently in the catalog."""
    return tuple(_CATALOG)


def register_algorithm(
    name: str,
    description: str,
    builder: Callable[[], PipelineDAG],
    *,
    replace: bool = False,
    overwrite: bool | None = None,
) -> AlgorithmInfo:
    """Install a custom pipeline into the catalog.

    The builder is invoked once to validate the DAG and derive the stage
    counts recorded in the :class:`AlgorithmInfo` row.  Registering a name
    that already exists raises :class:`ReproError` unless ``replace=True``
    (``overwrite`` is accepted as a legacy alias).
    """
    if overwrite is not None:
        replace = overwrite
    if not replace and name in _CATALOG:
        raise ReproError(
            f"Algorithm {name!r} is already registered; pass replace=True to replace it"
        )
    dag = builder()
    dag.validated()
    info = AlgorithmInfo(
        name=name,
        description=description,
        builder=builder,
        expected_stages=len(dag),
        expected_multi_consumer_stages=len(dag.multi_consumer_stages()),
    )
    _CATALOG[name] = info
    return info


def unregister_algorithm(name: str) -> None:
    """Remove a previously registered algorithm.

    The built-in Table-3 suite cannot be unregistered: :data:`ALGORITHM_NAMES`
    and :func:`table3` contractually list those entries.
    """
    if name in ALGORITHM_NAMES:
        raise ReproError(f"Algorithm {name!r} is part of the built-in suite and cannot be unregistered")
    if name not in _CATALOG:
        raise ReproError(f"Unknown algorithm {name!r}; nothing to unregister")
    del _CATALOG[name]


def algorithm_info(name: str) -> AlgorithmInfo:
    try:
        return _CATALOG[name]
    except KeyError:
        raise ReproError(
            f"Unknown algorithm {name!r}; available: {', '.join(_CATALOG)}"
        ) from None


def build_algorithm(name: str) -> PipelineDAG:
    """Build one of the Table-3 pipelines by name."""
    return algorithm_info(name).build()


def table3() -> list[dict[str, object]]:
    """Reproduce Table 3: name, description, #stages, #multi-consumer stages.

    Only the built-in evaluation suite is listed; client algorithms added via
    :func:`register_algorithm` do not change the paper's table.
    """
    rows = []
    for name in ALGORITHM_NAMES:
        info = _CATALOG[name]
        dag = info.build()
        rows.append(
            {
                "algorithm": info.name,
                "description": info.description,
                "stages": len(dag),
                "multi_consumer_stages": len(dag.multi_consumer_stages()),
            }
        )
    return rows
