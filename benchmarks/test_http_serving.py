"""Serving-front smoke benchmark: the HTTP layer must not change answers.

The acceptance bar for the network surface: an HTTP round-trip of a catalog
pipeline returns the *same* fingerprint and area/power summary as an
in-process ``engine.submit`` of the equivalent target, a repeated request is
answered from a cache tier, and the warm HTTP path (JSON codec + TCP + cache
lookup) stays far cheaper than a cold ILP solve.
"""

from __future__ import annotations

import json
import time

from repro.algorithms import build_algorithm
from repro.api import CompileTarget
from repro.estimate.report import accelerator_report
from repro.service import CompileEngine, ServiceClient, start_server

W, H = 480, 320


def test_http_round_trip_matches_in_process_compile(benchmark):
    def serve_and_compare():
        engine = CompileEngine(workers=2)
        server = start_server(engine)
        client = ServiceClient(port=server.port)
        try:
            target = CompileTarget(
                build_algorithm("harris-m"), image_width=W, image_height=H
            )
            start = time.perf_counter()
            cold = client.compile(target)
            cold_s = time.perf_counter() - start
            warm_s = min(
                _timed(lambda: client.compile(target)) for _ in range(5)
            )
            warm = client.compile(target)
            in_process = engine.submit(target)
            return cold, warm, in_process, cold_s, warm_s
        finally:
            server.stop()
            engine.shutdown()

    cold, warm, in_process, cold_s, warm_s = benchmark.pedantic(
        serve_and_compare, rounds=1, iterations=1
    )
    print(
        f"\nHTTP front: cold {cold_s * 1000:.1f} ms, warm {warm_s * 1000:.2f} ms "
        f"({cold_s / warm_s:.0f}x), sources {cold['source']} -> {warm['source']}"
    )
    # Same design point, bit-identical summary, straight through the codec.
    assert cold["ok"] and warm["ok"]
    assert cold["fingerprint"] == in_process.fingerprint
    row = json.loads(json.dumps(accelerator_report(in_process.accelerator).row()))
    assert cold["report"] == row
    assert warm["report"] == row
    # The repeat was served from a cache tier, not a second solve.
    assert cold["source"] == "solver"
    assert warm["source"] in ("memory", "disk")
    # Warm HTTP = codec + loopback TCP + hash lookup: must beat the ILP solve
    # comfortably (generous 3x bound to absorb noisy shared runners).
    assert warm_s * 3 <= cold_s, (
        f"warm HTTP round-trip {warm_s * 1000:.1f} ms vs cold {cold_s * 1000:.1f} ms"
    )


def _timed(fn) -> float:
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start
