"""Verification-layer smoke benchmark: batched replay and verdict caching.

Quantifies the two performance claims behind verification-as-a-service: the
whole-batch NumPy replay must beat an equivalent per-frame Python loop by a
healthy margin (the point of vectorizing was amortising dispatch overhead
across frames), and a warm verify — a fingerprint lookup in the verdict
cache — must be far cheaper than the cold replay it memoises.
"""

from __future__ import annotations

import time

from repro.algorithms import build_algorithm
from repro.api import CompileTarget
from repro.service import CompileEngine, VerifyEngine, VerifyRequest
from repro.sim.batch import replay_frames, replay_frames_loop

#: Small frames, many of them: the regime the vectorization targets, where
#: per-stage Python dispatch (not element arithmetic) dominates the loop.
W, H = 32, 24
FRAMES = 64


def _timed(fn) -> float:
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def test_batched_replay_is_3x_faster_than_frame_loop(benchmark):
    """Acceptance: vectorized replay >= 3x the per-stage-per-frame loop."""
    dag = build_algorithm("canny-m")  # multi-stage: dispatch overhead dominates

    def both():
        # Warm NumPy/allocator paths once so neither side pays first-touch cost.
        replay_frames(dag, W, H, frames=2, seed=0)
        batched = min(
            _timed(lambda: replay_frames(dag, W, H, frames=FRAMES, seed=0))
            for _ in range(3)
        )
        looped = min(
            _timed(lambda: replay_frames_loop(dag, W, H, frames=FRAMES, seed=0))
            for _ in range(3)
        )
        return batched, looped

    batched, looped = benchmark.pedantic(both, rounds=1, iterations=1)
    speedup = looped / batched if batched > 0 else float("inf")
    print(
        f"\nBatched replay ({FRAMES} frames of {W}x{H}): vectorized "
        f"{batched * 1000:.1f} ms, frame loop {looped * 1000:.1f} ms ({speedup:.1f}x)"
    )
    assert batched * 3 <= looped, (
        f"vectorized replay only {speedup:.1f}x faster than the frame loop"
    )


def test_warm_verify_is_5x_faster_than_cold(benchmark):
    """Acceptance: a cached verdict >= 5x faster than the cold verification."""

    def cold_and_warm():
        engine = CompileEngine(workers=2, executor="thread")
        try:
            verify = VerifyEngine(engine)
            request = VerifyRequest(
                target=CompileTarget(
                    build_algorithm("unsharp-m"), image_width=W, image_height=H
                )
            )
            cold = _timed(lambda: verify.submit(request))
            # Best of several warm calls: one lookup is microseconds, so a
            # badly-timed scheduler preemption must not decide the ratio.
            warm = min(_timed(lambda: verify.submit(request)) for _ in range(5))
            stats = verify.stats()
        finally:
            engine.shutdown()
        return cold, warm, stats

    cold, warm, stats = benchmark.pedantic(cold_and_warm, rounds=1, iterations=1)
    speedup = cold / warm if warm > 0 else float("inf")
    print(
        f"\nVerify cache: cold {cold * 1000:.1f} ms, warm {warm * 1000:.3f} ms "
        f"({speedup:.0f}x, memory hits={stats['served_from_memory']})"
    )
    assert stats["served_from_memory"] == 5 and stats["verified"] == 1
    assert warm * 5 <= cold, f"warm verify only {speedup:.1f}x faster than cold"
