"""Per-engine request metrics: latency, throughput and cache effectiveness.

Stability: public.

The engine records one :class:`RequestTrace` per job into a bounded ring and
keeps aggregate counters, so long-running services can expose hit rates and
latency percentiles without unbounded memory growth.  Jobs shed by the
admission queue arrive as traces with ``source="rejected"`` and count toward
``errors`` and the ``rejected`` counter; the queue's own ``rejected_total``
counter (surfaced on ``GET /v1/metrics``) is the authoritative shed count.

Latency aggregates are **source-class aware**: a percentile over a window
that mixes microsecond cache hits with second-scale ILP solves describes
neither, and a burst of queue sheds (zero-latency traces) used to drag p50
to zero exactly when the service was at its slowest.  ``summary()`` therefore
reports ``p50_seconds``/``p95_seconds`` over non-rejected traces only, plus
per-class percentiles for the two classes operators actually tune:
``compiled`` (fresh generator runs) and ``served_from_cache``.

Per-stage timing comes from the span tracer (:mod:`repro.trace`): the engine
feeds each owned result's span tree into :meth:`EngineMetrics.observe_spans`,
which aggregates stage durations into :class:`StageHistogram` buckets.  The
histograms back the ``stage_seconds`` summary block and the per-stage
``repro_stage_seconds`` histograms of the Prometheus exposition
(:mod:`repro.service.observability`).
"""

from __future__ import annotations

import bisect
import threading
from collections import deque
from dataclasses import dataclass, field

from repro.trace import Span, flatten_spans

#: Latency bucket upper bounds (seconds) for per-stage histograms.  Spans
#: range from microsecond cache lookups to multi-second enumeration solves,
#: so the grid is log-spaced across five decades; observations beyond the
#: last bound land in the implicit ``+Inf`` overflow bucket.
DEFAULT_BUCKETS: tuple[float, ...] = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

#: Stages pre-seeded in every :class:`EngineMetrics`, so the Prometheus
#: exposition always carries the acceptance-critical stage families (with
#: zero counts) even before the first traced compile — dashboards and
#: scrapers never see the schema change as traffic arrives.
DEFAULT_STAGES: tuple[str, ...] = ("cache", "solve", "allocate", "rtl", "verify")

#: Source classes for latency reporting; :func:`classify_source` maps the
#: raw trace sources (``memory``/``disk``/``solver``/...) onto them.
SOURCE_CLASSES: tuple[str, ...] = (
    "compiled", "served_from_cache", "deduplicated", "rejected",
)


def classify_source(source: str) -> str:
    """Map a raw result source onto its latency class.

    ``memory``/``disk`` are one class (``served_from_cache``) — the split
    between tiers is a cache property, not a latency class — and anything
    that ran a generator (``solver`` and friends) is ``compiled``.
    """
    if source in ("memory", "disk"):
        return "served_from_cache"
    if source in ("deduplicated", "rejected"):
        return source
    return "compiled"


@dataclass(frozen=True)
class RequestTrace:
    """One completed compile job, as seen by the engine."""

    label: str
    fingerprint: str
    source: str
    seconds: float
    ok: bool

    @property
    def source_class(self) -> str:
        return classify_source(self.source)


class StageHistogram:
    """Fixed-bucket latency histogram for one pipeline stage.

    Mirrors the Prometheus histogram model: observations are counted into
    the first bucket whose upper bound is >= the value (plus an implicit
    ``+Inf`` overflow bucket), and the running ``sum``/``count`` make mean
    latency and rates derivable.  Not thread-safe by itself — the owning
    :class:`EngineMetrics` serializes access under its lock.
    """

    __slots__ = ("buckets", "counts", "sum", "count")

    def __init__(self, buckets: tuple[float, ...] = DEFAULT_BUCKETS) -> None:
        self.buckets = tuple(buckets)
        self.counts = [0] * (len(self.buckets) + 1)  # [..., +Inf overflow]
        self.sum = 0.0
        self.count = 0

    def observe(self, seconds: float) -> None:
        self.counts[bisect.bisect_left(self.buckets, seconds)] += 1
        self.sum += seconds
        self.count += 1

    def snapshot(self) -> dict:
        """Cumulative-bucket form: ``{"buckets": [[le, n], ...], "sum", "count"}``.

        ``buckets`` are cumulative (Prometheus ``le`` semantics) and end with
        the ``"+Inf"`` bucket, whose count always equals ``count``.
        """
        cumulative = []
        running = 0
        for bound, bucket_count in zip(self.buckets, self.counts):
            running += bucket_count
            cumulative.append([bound, running])
        cumulative.append(["+Inf", self.count])
        return {"buckets": cumulative, "sum": self.sum, "count": self.count}


@dataclass
class EngineMetrics:
    """Aggregate counters plus a bounded window of recent request traces."""

    requests: int = 0
    compiled: int = 0
    served_from_cache: int = 0
    deduplicated: int = 0
    rejected: int = 0
    errors: int = 0
    batches: int = 0
    total_seconds: float = 0.0
    # ILP solver effectiveness, aggregated from ``ilp``/``ilp_compound`` span
    # attrs by observe_spans: how many solves ran, how many were avoided
    # outright by a warm-start certificate, how many were seeded, how the
    # backend races went, and how much the branch-and-bound pruned.
    ilp_solves: int = 0
    ilp_warm_certificates: int = 0
    ilp_warm_seeded: int = 0
    ilp_races: int = 0
    ilp_race_wins_python: int = 0
    ilp_race_wins_highs: int = 0
    ilp_pruned_nodes: int = 0
    ilp_compound_solves: int = 0
    ilp_compound_blocks: int = 0
    recent: deque = field(default_factory=lambda: deque(maxlen=256))
    stages: dict = field(
        default_factory=lambda: {name: StageHistogram() for name in DEFAULT_STAGES}
    )
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    def record(self, trace: RequestTrace) -> None:
        with self._lock:
            self.requests += 1
            self.total_seconds += trace.seconds
            if trace.source == "rejected":
                # A shed job both errors (it was not served) and counts as
                # rejected; latency aggregates below exclude it either way.
                self.rejected += 1
                self.errors += 1
            elif not trace.ok:
                self.errors += 1
            elif trace.source in ("memory", "disk"):
                self.served_from_cache += 1
            elif trace.source == "deduplicated":
                self.deduplicated += 1
            else:
                self.compiled += 1
            self.recent.append(trace)

    def record_batch(self) -> None:
        with self._lock:
            self.batches += 1

    def observe_spans(self, spans: tuple[Span, ...] | list[Span]) -> None:
        """Aggregate a result's span tree into the per-stage histograms.

        Every span in the forest — children included — is counted under its
        own name, so nested stages (``ilp`` inside ``solve``) each get their
        own histogram.  Unknown stage names create histograms on demand.
        ``ilp``/``ilp_compound`` spans additionally feed the solver counters
        (warm-start certificates and seeds, race outcomes, pruned nodes).
        """
        if not spans:
            return
        flat = flatten_spans(spans)
        with self._lock:
            for span in flat:
                histogram = self.stages.get(span.name)
                if histogram is None:
                    histogram = self.stages[span.name] = StageHistogram()
                histogram.observe(span.seconds)
                if span.name == "ilp":
                    self._observe_ilp(span.attrs)
                elif span.name == "ilp_compound":
                    self.ilp_compound_solves += 1
                    self.ilp_compound_blocks += int(
                        span.attrs.get("block_solves", span.attrs.get("blocks", 0)) or 0
                    )

    def _observe_ilp(self, attrs: dict) -> None:
        """Fold one ``ilp`` span's attrs into the solver counters (lock held)."""
        self.ilp_solves += 1
        warm = attrs.get("warm_start")
        if warm == "certificate":
            self.ilp_warm_certificates += 1
        elif warm in ("seeded", "incumbent"):
            self.ilp_warm_seeded += 1
        try:
            self.ilp_pruned_nodes += int(attrs.get("bnb_pruned", 0) or 0)
        except (TypeError, ValueError):
            pass
        winner = attrs.get("race_winner")
        if winner is not None:
            self.ilp_races += 1
            if winner == "python":
                self.ilp_race_wins_python += 1
            elif winner == "highs":
                self.ilp_race_wins_highs += 1

    def stage_histograms(self) -> dict[str, dict]:
        """Snapshot of every stage histogram (cumulative-bucket form)."""
        with self._lock:
            return {name: hist.snapshot() for name, hist in self.stages.items()}

    @property
    def mean_seconds(self) -> float:
        # Rejected jobs never ran and carry zero latency; including them
        # would deflate the mean exactly when the service is saturated.
        served = self.requests - self.rejected
        return self.total_seconds / served if served else 0.0

    def latency_percentile(self, fraction: float, source_class: str | None = None) -> float:
        """Latency percentile (0..1) over the recent-trace window.

        ``source_class`` restricts the window to one class
        (:data:`SOURCE_CLASSES`); the default covers every class except
        ``rejected`` — shed jobs never ran, so their zero latencies are
        excluded from every aggregate.
        """
        with self._lock:
            latencies = self._latencies(source_class)
        return self._percentile_of(latencies, fraction)

    def _latencies(self, source_class: str | None = None) -> list[float]:
        """Sorted latencies of the window, filtered by class (lock held)."""
        return sorted(
            trace.seconds
            for trace in self.recent
            if trace.source_class != "rejected"
            and (source_class is None or trace.source_class == source_class)
        )

    @staticmethod
    def _percentile_of(latencies: list[float], fraction: float) -> float:
        if not latencies:
            return 0.0
        index = min(len(latencies) - 1, int(round(fraction * (len(latencies) - 1))))
        return latencies[index]

    def summary(self) -> dict[str, float | int]:
        with self._lock:
            latencies = self._latencies()
            compiled = self._latencies("compiled")
            cached = self._latencies("served_from_cache")
            stage_seconds = {
                name: {
                    "count": hist.count,
                    "sum_seconds": round(hist.sum, 6),
                    "mean_seconds": round(hist.sum / hist.count, 6) if hist.count else 0.0,
                }
                for name, hist in self.stages.items()
            }
            return {
                "requests": self.requests,
                "compiled": self.compiled,
                "served_from_cache": self.served_from_cache,
                "deduplicated": self.deduplicated,
                "rejected": self.rejected,
                "errors": self.errors,
                "batches": self.batches,
                "total_seconds": round(self.total_seconds, 6),
                "mean_seconds": round(self.mean_seconds, 6),
                "p50_seconds": round(self._percentile_of(latencies, 0.50), 6),
                "p95_seconds": round(self._percentile_of(latencies, 0.95), 6),
                "p50_seconds_compiled": round(self._percentile_of(compiled, 0.50), 6),
                "p95_seconds_compiled": round(self._percentile_of(compiled, 0.95), 6),
                "p50_seconds_served_from_cache": round(self._percentile_of(cached, 0.50), 6),
                "p95_seconds_served_from_cache": round(self._percentile_of(cached, 0.95), 6),
                "ilp_solves": self.ilp_solves,
                "ilp_warm_certificates": self.ilp_warm_certificates,
                "ilp_warm_seeded": self.ilp_warm_seeded,
                "ilp_races": self.ilp_races,
                "ilp_race_wins_python": self.ilp_race_wins_python,
                "ilp_race_wins_highs": self.ilp_race_wins_highs,
                "ilp_pruned_nodes": self.ilp_pruned_nodes,
                "ilp_compound_solves": self.ilp_compound_solves,
                "ilp_compound_blocks": self.ilp_compound_blocks,
                "stage_seconds": stage_seconds,
            }
