"""Programmatic pipeline construction.

:class:`PipelineBuilder` is the Python-embedded alternative to the textual
DSL.  A stage is defined either from an expression AST (the builder derives
the stencil windows automatically) or from explicit windows when only the
graph shape matters (e.g. the scalability sweep of Sec. 8.2).

Example
-------
>>> builder = PipelineBuilder("blur")
>>> k0 = builder.input("K0")
>>> k1 = builder.stage("K1", window_average(k0, 3, 3))
>>> k2 = builder.output("K2", k1(0, 0) - k0(0, 0))
>>> dag = builder.build()
"""

from __future__ import annotations

from repro.dsl import ast
from repro.errors import DSLSemanticError
from repro.ir.dag import PipelineDAG, Stage
from repro.ir.stencil import StencilWindow


class StageHandle:
    """A lightweight reference to a stage usable inside expressions."""

    def __init__(self, builder: "PipelineBuilder", name: str) -> None:
        self._builder = builder
        self.name = name

    def __call__(self, dx: int = 0, dy: int = 0, dt: int = 0) -> ast.StageRef:
        """Reference this stage at offset ``(dx, dy)``, optionally ``dt`` frames back."""
        return ast.StageRef(self.name, dx, dy, dt)

    def ref(self, dx: int = 0, dy: int = 0, dt: int = 0) -> ast.StageRef:
        return self(dx, dy, dt)

    def prev(self, frames: int = 1) -> ast.StageRef:
        """This stage at the same pixel ``frames`` frames in the past."""
        if frames < 1:
            raise DSLSemanticError(f"prev() frame count must be >= 1, got {frames}")
        return ast.StageRef(self.name, 0, 0, -frames)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"StageHandle({self.name!r})"


class PipelineBuilder:
    """Incremental builder of :class:`PipelineDAG` objects."""

    def __init__(self, name: str = "pipeline") -> None:
        self._dag = PipelineDAG(name)
        self._built = False

    # ----------------------------------------------------------------- stages
    def input(self, name: str) -> StageHandle:
        """Declare an input stage (fed from off-chip memory)."""
        self._dag.add_stage(Stage(name=name, is_input=True))
        return StageHandle(self, name)

    def stage(
        self,
        name: str,
        expression: ast.Expr | None = None,
        *,
        reads: dict[StageHandle | str, StencilWindow] | None = None,
        is_output: bool = False,
    ) -> StageHandle:
        """Declare a compute stage.

        Either ``expression`` (windows are derived from the references it
        contains) or ``reads`` (explicit producer windows, no arithmetic) must
        be supplied.
        """
        if expression is None and not reads:
            raise DSLSemanticError(
                f"Stage {name!r} needs an expression or an explicit 'reads' mapping"
            )
        self._dag.add_stage(Stage(name=name, is_output=is_output, expression=expression))

        windows: dict[str, StencilWindow] = {}
        if expression is not None:
            windows.update(ast.stencil_windows(expression))
        if reads:
            for producer, window in reads.items():
                producer_name = producer.name if isinstance(producer, StageHandle) else producer
                if producer_name in windows:
                    windows[producer_name] = windows[producer_name].union(window)
                else:
                    windows[producer_name] = window
        if not windows:
            raise DSLSemanticError(f"Stage {name!r} does not read any producer")
        for producer_name, window in windows.items():
            self._dag.add_edge(producer_name, name, window)
        return StageHandle(self, name)

    def output(
        self,
        name: str,
        expression: ast.Expr | None = None,
        *,
        reads: dict[StageHandle | str, StencilWindow] | None = None,
    ) -> StageHandle:
        """Declare an output stage (streams its result off-chip)."""
        return self.stage(name, expression, reads=reads, is_output=True)

    # ------------------------------------------------------------------ build
    def build(self) -> PipelineDAG:
        """Validate and return the pipeline DAG."""
        if self._built:
            raise DSLSemanticError("PipelineBuilder.build() may only be called once")
        self._built = True
        return self._dag.validated()

    @property
    def dag(self) -> PipelineDAG:
        """Access the partially-constructed DAG (mainly for tests)."""
        return self._dag


# ---------------------------------------------------------------------------
# Expression helpers used by the algorithm suite
# ---------------------------------------------------------------------------
def window_sum(stage: StageHandle, width: int, height: int, *, centered: bool = True) -> ast.Expr:
    """Sum of a ``width x height`` window of ``stage``."""
    window = StencilWindow.centered(width, height) if centered else StencilWindow.from_extent(width, height)
    terms = [stage(dx, dy) for dx, dy in window.offsets()]
    expr: ast.Expr = terms[0]
    for term in terms[1:]:
        expr = expr + term
    return expr


def window_average(stage: StageHandle, width: int, height: int, *, centered: bool = True) -> ast.Expr:
    """Mean of a ``width x height`` window of ``stage``."""
    return window_sum(stage, width, height, centered=centered) / float(width * height)


def convolve(
    stage: StageHandle,
    kernel: list[list[float]],
    *,
    centered: bool = True,
    normalize: bool = False,
) -> ast.Expr:
    """2-D convolution (correlation form) of ``stage`` with a constant kernel."""
    height = len(kernel)
    if height == 0 or any(len(row) != len(kernel[0]) for row in kernel):
        raise DSLSemanticError("Convolution kernel must be a non-empty rectangular matrix")
    width = len(kernel[0])
    window = StencilWindow.centered(width, height) if centered else StencilWindow.from_extent(width, height)
    terms: list[ast.Expr] = []
    total = 0.0
    for row_index, dy in enumerate(range(window.min_dy, window.max_dy + 1)):
        for col_index, dx in enumerate(range(window.min_dx, window.max_dx + 1)):
            weight = float(kernel[row_index][col_index])
            total += weight
            if weight == 0.0:
                continue
            terms.append(stage(dx, dy) * weight if weight != 1.0 else stage(dx, dy))
    if not terms:
        raise DSLSemanticError("Convolution kernel is all zeros")
    expr: ast.Expr = terms[0]
    for term in terms[1:]:
        expr = expr + term
    if normalize and total not in (0.0, 1.0):
        expr = expr / total
    return expr


def temporal_average(
    stage: StageHandle,
    depth: int,
    *,
    weights: list[float] | None = None,
) -> ast.Expr:
    """Weighted average of ``stage`` over the current and ``depth - 1`` past frames.

    With no ``weights``, a boxcar (uniform) average.  Pass explicit weights
    (newest frame first) for e.g. a truncated-exponential temporal filter;
    weights are normalised to sum to 1.
    """
    if depth < 1:
        raise DSLSemanticError(f"Temporal average depth must be >= 1, got {depth}")
    if weights is None:
        weights = [1.0] * depth
    if len(weights) != depth:
        raise DSLSemanticError(
            f"Temporal average expects {depth} weights (newest first), got {len(weights)}"
        )
    total = float(sum(weights))
    if total == 0.0:
        raise DSLSemanticError("Temporal average weights sum to zero")
    terms: list[ast.Expr] = []
    for frames_back, weight in enumerate(weights):
        scale = float(weight) / total
        if scale == 0.0:
            continue
        ref = stage(0, 0, -frames_back)
        terms.append(ref if scale == 1.0 else ref * scale)
    if not terms:
        raise DSLSemanticError("Temporal average weights are all zero")
    expr: ast.Expr = terms[0]
    for term in terms[1:]:
        expr = expr + term
    return expr


def frame_difference(stage: StageHandle, frames: int = 1) -> ast.Expr:
    """Absolute difference between the current frame and ``frames`` frames ago."""
    if frames < 1:
        raise DSLSemanticError(f"Frame difference distance must be >= 1, got {frames}")
    return ast.Call("abs", (stage(0, 0) - stage(0, 0, -frames),))
