"""Darkroom-style domain specific language front end.

Two equivalent entry points are provided:

* :func:`repro.dsl.parser.parse_pipeline` — parse the textual DSL used in the
  paper (``input K0; K1 = im(x,y) ... end``) into a :class:`PipelineDAG`.
* :class:`repro.dsl.builder.PipelineBuilder` — construct pipelines directly
  from Python with operator-overloaded stencil expressions.
"""

from repro.dsl.ast import (
    Expr,
    Const,
    StageRef,
    BinOp,
    UnaryOp,
    Call,
    evaluate,
    references_by_stage,
    stencil_windows,
)
from repro.dsl.parser import parse_pipeline
from repro.dsl.builder import (
    PipelineBuilder,
    StageHandle,
    frame_difference,
    temporal_average,
)

__all__ = [
    "Expr",
    "Const",
    "StageRef",
    "BinOp",
    "UnaryOp",
    "Call",
    "evaluate",
    "references_by_stage",
    "stencil_windows",
    "parse_pipeline",
    "PipelineBuilder",
    "StageHandle",
    "frame_difference",
    "temporal_average",
]
