"""Compound (block-diagonal) models: merge N models, solve once, split.

The Fig. 10 DSE sweep solves the ``2^k`` per-stage coalescing variants of one
pipeline as *independent* ILPs that share all of their structure.  This
module folds such a family into a single compound model:

* :func:`merge_models` concatenates the source models into one
  :class:`~repro.ilp.model.Model`.  Each source becomes one *block*: its
  variables are namespaced ``v{i}:`` (so ``S[gauss]`` of variant 3 is
  ``v3:S[gauss]``), its constraints are copied over the mapped variables, and
  the compound objective is the sum of the block objectives.  No constraint
  ever crosses blocks — the compound model is block-diagonal by construction.
* :func:`solve_compound` is the single solver entry point for such a model.
  It verifies block-separability, re-splits the model into its blocks, solves
  each with the regular backend stack (warm starts included) and stitches the
  block solutions into one combined :class:`~repro.ilp.model.SolveResult`.
  Because every block is solved by the same exact backends a standalone model
  would use — same variable order, same constraint order — the per-block
  solutions are identical to solving the source models one by one; the
  decomposition changes *where* the work happens, never the answer.

The split/solve loop runs under one ``ilp_compound`` trace span whose
``blocks``/``block_solves`` attrs let the metrics layer distinguish one
compound solve from N independent ones.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ILPError
from repro.ilp.expr import LinExpr, Variable
from repro.ilp.model import Constraint, Model, SolveResult, SolveStatus, WarmStart
from repro.ilp.solver import solve
from repro.trace import span_attr, trace_span


@dataclass(frozen=True)
class CompoundBlock:
    """One source model's slice of a compound model."""

    index: int
    #: Name of the source model (restored on the split sub-model).
    name: str
    #: Compound-model variables, in the source model's variable order.
    variables: tuple[Variable, ...]
    #: Constant term of the source objective (re-attached on split).
    objective_constant: float = 0.0

    @property
    def prefix(self) -> str:
        return f"v{self.index}:"


def merge_models(models: list[Model], name: str = "compound") -> tuple[Model, list[CompoundBlock]]:
    """Concatenate independent models into one block-diagonal compound model."""
    if not models:
        raise ILPError("merge_models needs at least one model")
    sense = models[0].sense
    if any(model.sense != sense for model in models):
        raise ILPError("All models of a compound must share the objective sense")

    compound = Model(name=name, sense=sense)
    blocks: list[CompoundBlock] = []
    objective = LinExpr()
    for index, source in enumerate(models):
        prefix = f"v{index}:"
        mapping: dict[Variable, Variable] = {}
        for var in source.variables:
            mapping[var] = compound.add_var(
                prefix + var.name, lb=var.lb, ub=var.ub, integer=var.integer
            )
        for constraint in source.constraints:
            expr = LinExpr(
                {mapping[var]: coeff for var, coeff in constraint.expr.coeffs.items()}, 0.0
            )
            compound.add_constraint(
                Constraint(expr=expr, sense=constraint.sense, rhs=constraint.rhs),
                name=prefix + constraint.name if constraint.name else "",
            )
        for var, coeff in source.objective.coeffs.items():
            objective.coeffs[mapping[var]] = objective.coeffs.get(mapping[var], 0.0) + coeff
        objective.constant += source.objective.constant
        blocks.append(
            CompoundBlock(
                index=index,
                name=source.name,
                variables=tuple(mapping[var] for var in source.variables),
                objective_constant=source.objective.constant,
            )
        )
    compound.set_objective(objective)
    return compound, blocks


def split_block(compound: Model, block: CompoundBlock) -> Model:
    """Rebuild one block of a compound model as a standalone model.

    The sub-model mirrors the source model that :func:`merge_models` consumed:
    same variable order, bounds and integrality (names stripped of the block
    prefix), same constraint order, and the block's share of the objective.
    """
    sub = Model(name=block.name, sense=compound.sense)
    mapping: dict[Variable, Variable] = {}
    for var in block.variables:
        local_name = var.name[len(block.prefix):] if var.name.startswith(block.prefix) else var.name
        mapping[var] = sub.add_var(local_name, lb=var.lb, ub=var.ub, integer=var.integer)

    owned = set(block.variables)
    for constraint in compound.constraints:
        used = constraint.expr.variables()
        if not used or not all(var in owned for var in used):
            continue
        expr = LinExpr(
            {mapping[var]: coeff for var, coeff in constraint.expr.coeffs.items()}, 0.0
        )
        local_name = constraint.name
        if local_name.startswith(block.prefix):
            local_name = local_name[len(block.prefix):]
        sub.add_constraint(
            Constraint(expr=expr, sense=constraint.sense, rhs=constraint.rhs), name=local_name
        )

    objective = LinExpr(constant=block.objective_constant)
    for var, coeff in compound.objective.coeffs.items():
        if var in owned:
            objective.coeffs[mapping[var]] = coeff
    sub.set_objective(objective)
    return sub


def _check_separable(compound: Model, blocks: list[CompoundBlock]) -> None:
    owner: dict[Variable, int] = {}
    for block in blocks:
        for var in block.variables:
            if var in owner:
                raise ILPError(f"Variable {var.name!r} is claimed by two compound blocks")
            owner[var] = block.index
    for var in compound.variables:
        if var not in owner:
            raise ILPError(f"Variable {var.name!r} belongs to no compound block")
    for constraint in compound.constraints:
        indices = {owner[var] for var in constraint.expr.variables()}
        if len(indices) > 1:
            raise ILPError(
                f"Constraint {constraint.name or constraint!r} couples blocks {sorted(indices)}; "
                "the compound model is not block-separable"
            )


def solve_compound(
    compound: Model,
    blocks: list[CompoundBlock],
    *,
    backend: str = "auto",
    warm_starts: list[WarmStart | None] | None = None,
    raise_on_failure: bool = False,
) -> tuple[SolveResult, list[SolveResult]]:
    """Solve a block-diagonal compound model in one call.

    Returns ``(combined, per_block)``: the combined result carries values for
    every compound variable and the summed objective; ``per_block`` holds each
    block's own :class:`SolveResult` over the split sub-model's variables.
    The combined status is OPTIMAL only when every block is; otherwise it is
    the first failing block's status (objective ``None``).
    """
    _check_separable(compound, blocks)
    if warm_starts is not None and len(warm_starts) != len(blocks):
        raise ILPError(
            f"warm_starts has {len(warm_starts)} entries for {len(blocks)} blocks"
        )

    per_block: list[SolveResult] = []
    values: dict[Variable, float] = {}
    failing: SolveStatus | None = None
    message = ""
    iterations = nodes = pruned = 0
    with trace_span("ilp_compound", blocks=len(blocks)):
        for block in blocks:
            sub = split_block(compound, block)
            warm = warm_starts[block.index] if warm_starts is not None else None
            result = solve(sub, backend, warm_start=warm, raise_on_failure=raise_on_failure)
            per_block.append(result)
            iterations += result.iterations
            nodes += result.nodes
            pruned += result.pruned
            if result.status is SolveStatus.OPTIMAL:
                for position, var in enumerate(block.variables):
                    values[var] = result.values[sub.variables[position]]
            elif failing is None:
                failing = result.status
                message = f"block {block.index} ({block.name!r}) is {result.status.value}"
        span_attr(block_solves=len(per_block), status=(failing or SolveStatus.OPTIMAL).value)

    combined = SolveResult(
        status=failing or SolveStatus.OPTIMAL,
        objective=None if failing else compound.objective_value(values),
        values=values if failing is None else {},
        backend=f"compound[{len(blocks)}]",
        iterations=iterations,
        message=message,
        nodes=nodes,
        pruned=pruned,
    )
    return combined, per_block
