"""Unit tests for the cycle-level simulator (R1-R3 checks and access counts)."""

import pytest

from repro.core.compiler import compile_pipeline
from repro.core.schedule import PipelineSchedule
from repro.errors import SimulationError
from repro.estimate.power import buffer_access_rates
from repro.memory.allocator import allocate_line_buffer
from repro.memory.spec import asic_dual_port
from repro.sim.cycle import simulate_schedule

from tests.conftest import TEST_HEIGHT, TEST_WIDTH, build_chain, build_paper_example

W, H = TEST_WIDTH, TEST_HEIGHT


def legal_chain_schedule():
    return compile_pipeline(build_chain(3), image_width=W, image_height=H).schedule


def broken_schedule():
    """A hand-built schedule that violates both causality and port limits."""
    dag = build_chain(2, stencil=3)
    spec = asic_dual_port()
    starts = {"K0": 0, "K1": 1}  # far too early: needs 2W+1
    buffers = {
        "K0": allocate_line_buffer("K0", W, 3, spec, reader_heights={"K1": 3}),
    }
    return PipelineSchedule(
        dag=dag,
        image_width=W,
        image_height=H,
        memory_spec=spec,
        start_cycles=starts,
        line_buffers=buffers,
        generator="broken",
    )


class TestLegalSchedules:
    def test_no_violations(self):
        report = simulate_schedule(legal_chain_schedule())
        assert report.ok
        assert report.violations == []

    def test_throughput_is_one_pixel_per_cycle(self):
        report = simulate_schedule(legal_chain_schedule())
        assert report.steady_state_throughput == pytest.approx(1.0, abs=0.05)

    def test_access_counts_match_analytic_rates(self):
        schedule = legal_chain_schedule()
        report = simulate_schedule(schedule, max_rows=schedule.image_height)
        for producer, stats in report.buffer_stats.items():
            config = schedule.line_buffers[producer]
            if config.lines == 0:
                continue
            expected_rate = buffer_access_rates(config)
            cycles = report.cycles_simulated
            measured_rate = stats.total_accesses / cycles
            # Ramp-up makes the measured rate slightly lower than steady state.
            assert measured_rate <= expected_rate + 1e-9
            assert measured_rate >= 0.5 * expected_rate

    def test_peak_block_accesses_within_ports(self):
        schedule = legal_chain_schedule()
        report = simulate_schedule(schedule)
        for stats in report.buffer_stats.values():
            assert stats.peak_block_accesses <= schedule.memory_spec.ports

    def test_multi_consumer_schedule_is_legal(self):
        schedule = compile_pipeline(build_paper_example(), image_width=W, image_height=H).schedule
        report = simulate_schedule(schedule)
        assert report.ok

    def test_max_rows_respected(self):
        report = simulate_schedule(legal_chain_schedule(), max_rows=6)
        assert report.rows_simulated == 6


class TestViolationDetection:
    def test_causality_violation_detected(self):
        report = simulate_schedule(broken_schedule())
        assert not report.ok
        assert any("R1" in violation for violation in report.violations)

    def test_raise_on_violation(self):
        with pytest.raises(SimulationError):
            simulate_schedule(broken_schedule(), raise_on_violation=True)

    def test_violation_list_is_bounded(self):
        report = simulate_schedule(broken_schedule(), max_violations=5)
        assert len(report.violations) <= 5

    def test_early_consumer_start_detected(self):
        dag = build_paper_example()
        good = compile_pipeline(dag, image_width=W, image_height=H).schedule
        # Sabotage: start K2 as soon as its K0 window allows, ignoring its
        # dependency on K1 entirely.
        bad_starts = dict(good.start_cycles)
        bad_starts["K2"] = bad_starts["K0"] + W + 1
        sabotaged = PipelineSchedule(
            dag=dag,
            image_width=W,
            image_height=H,
            memory_spec=good.memory_spec,
            start_cycles=bad_starts,
            line_buffers=good.line_buffers,
            generator="sabotaged",
        )
        report = simulate_schedule(sabotaged)
        assert not report.ok
