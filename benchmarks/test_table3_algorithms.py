"""Table 3: the evaluation algorithm suite (stage counts and multi-consumer stages)."""

from __future__ import annotations

from repro.algorithms import table3

EXPECTED = {
    "canny-s": (9, 0),
    "canny-m": (10, 1),
    "harris-s": (7, 0),
    "harris-m": (7, 1),
    "unsharp-m": (5, 1),
    "xcorr-m": (3, 1),
    "denoise-m": (5, 2),
}


def test_table3_algorithm_suite(benchmark):
    rows = benchmark(table3)

    print("\nTable 3: evaluation algorithms")
    print(f"{'algorithm':<12}{'#stages':>9}{'#MC stages':>12}")
    for row in rows:
        print(f"{row['algorithm']:<12}{row['stages']:>9}{row['multi_consumer_stages']:>12}")

    measured = {row["algorithm"]: (row["stages"], row["multi_consumer_stages"]) for row in rows}
    assert measured == EXPECTED
