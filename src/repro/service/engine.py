"""The compile engine: cached, deduplicated, parallel compilation service.

:class:`CompileEngine` is the serving-layer entry point.  Its unit of work is
the :class:`repro.api.CompileTarget`; every submission path wraps
:func:`repro.core.compile_pipeline`:

* every generator run goes through a shared :class:`CompileCache`, so
  repeated targets (interactive clients, DSE sweeps, the auto-coalescing
  fallback, baseline comparisons) are answered without re-running anything;
* identical in-flight targets are deduplicated — concurrent batches that
  contain the same design point trigger exactly one run;
* batches fan out over a thread pool (the HiGHS backend releases the GIL, so
  independent solves overlap on multi-core hosts);
* per-request latency and hit-rate metrics are recorded
  (:class:`repro.service.metrics.EngineMetrics`).

Single targets submitted through :meth:`CompileEngine.submit` (or the
:meth:`CompileEngine.compile` convenience wrapper) run inline on the calling
thread — the pool is created lazily, so a cache-only engine costs nothing to
construct.

Async front
-----------
For services that await compile jobs instead of dedicating a thread per
request, the engine exposes an :mod:`asyncio` front over the same worker
pool: :meth:`submit_async` and :meth:`submit_batch_async` wrap the pool's
futures with :func:`asyncio.wrap_future`, and the engine is an async context
manager::

    async with CompileEngine(workers=4) as engine:
        batch = await engine.submit_batch_async(targets)

Results are identical to the synchronous paths for the same targets, and the
cache, dedup and metrics machinery is shared — an async client and a sync
batch racing on the same design point still trigger exactly one solve.

Legacy :class:`CompileRequest` objects are still accepted everywhere a target
is (converted via ``request.to_target()`` with a :class:`DeprecationWarning`).
"""

from __future__ import annotations

import asyncio
import os
import threading
import time
import warnings
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import replace
from typing import Iterable, Sequence

from repro.api.target import CompileTarget
from repro.core.compiler import CompiledAccelerator, compile_pipeline
from repro.core.scheduler import SchedulerOptions
from repro.ir.dag import PipelineDAG
from repro.memory.spec import MemorySpec
from repro.service.cache import CompileCache, DiskCacheStore
from repro.service.jobs import (
    SOURCE_DEDUPLICATED,
    BatchResult,
    CompileRequest,
    CompileResult,
)
from repro.service.metrics import EngineMetrics, RequestTrace

#: Environment variable that overrides :func:`default_worker_count`, so
#: deployments can size the pool without code changes.
WORKERS_ENV_VAR = "REPRO_WORKERS"


def default_worker_count() -> int:
    """Pool size used when the caller does not specify one.

    The ``REPRO_WORKERS`` environment variable, when set to a positive
    integer, takes precedence; anything unparsable or < 1 is ignored with a
    :class:`RuntimeWarning`.
    """
    override = os.environ.get(WORKERS_ENV_VAR, "").strip()
    if override:
        try:
            workers = int(override)
        except ValueError:
            workers = 0
        if workers >= 1:
            return workers
        warnings.warn(
            f"Ignoring invalid {WORKERS_ENV_VAR}={override!r} (need an integer >= 1)",
            RuntimeWarning,
            stacklevel=2,
        )
    return min(8, os.cpu_count() or 1)


class CompileEngine:
    """A compilation service instance: cache + worker pool + metrics.

    Parameters
    ----------
    workers:
        Thread-pool size for batch submissions (default:
        :func:`default_worker_count`, overridable via ``REPRO_WORKERS``).
    cache:
        A :class:`CompileCache` to share between engines; one is created when
        omitted.
    cache_dir:
        Convenience: when given (and ``cache`` is not), the created cache is
        backed by a :class:`DiskCacheStore` in this directory, so schedules
        persist across processes.
    max_cache_entries:
        LRU capacity of the created cache.
    """

    def __init__(
        self,
        workers: int | None = None,
        *,
        cache: CompileCache | None = None,
        cache_dir: str | os.PathLike | None = None,
        max_cache_entries: int = 512,
    ) -> None:
        if workers is not None and workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = workers or default_worker_count()
        if cache is None:
            store = DiskCacheStore(cache_dir) if cache_dir is not None else None
            cache = CompileCache(max_entries=max_cache_entries, store=store)
        self.cache = cache
        self.metrics = EngineMetrics()
        self._pool: ThreadPoolExecutor | None = None
        self._inflight: dict[str, Future] = {}
        self._lock = threading.Lock()

    # ------------------------------------------------------------- lifecycle
    def __enter__(self) -> "CompileEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    async def __aenter__(self) -> "CompileEngine":
        return self

    async def __aexit__(self, *exc_info) -> None:
        # Pool shutdown joins worker threads; keep that off the event loop.
        await asyncio.get_running_loop().run_in_executor(None, self.shutdown)

    def shutdown(self, wait: bool = True, *, cancel_pending: bool = False) -> None:
        """Stop the worker pool (the cache and its disk store stay usable).

        ``cancel_pending=True`` additionally cancels queued-but-unstarted
        jobs: their futures (and any :func:`asyncio.wrap_future` wrappers
        awaiting them) resolve with ``CancelledError``.
        """
        with self._lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=wait, cancel_futures=cancel_pending)

    def _ensure_pool(self) -> ThreadPoolExecutor:
        with self._lock:
            if self._pool is None:
                self._pool = ThreadPoolExecutor(
                    max_workers=self.workers, thread_name_prefix="repro-compile"
                )
            return self._pool

    # -------------------------------------------------------- normalization
    @staticmethod
    def _as_target(item: CompileTarget | CompileRequest) -> CompileTarget:
        if isinstance(item, CompileTarget):
            return item
        if isinstance(item, CompileRequest):
            warnings.warn(
                "Submitting CompileRequest objects is deprecated; build a "
                "repro.api.CompileTarget instead",
                DeprecationWarning,
                stacklevel=3,
            )
            return item.to_target()
        raise TypeError(f"Expected CompileTarget or CompileRequest, got {type(item).__name__}")

    # ------------------------------------------------------------ single job
    def compile(
        self,
        pipeline: CompileTarget | PipelineDAG,
        *,
        image_width: int | None = None,
        image_height: int | None = None,
        memory_spec: MemorySpec | None = None,
        coalescing: bool = False,
        options: SchedulerOptions | None = None,
        label: str = "",
    ) -> CompiledAccelerator:
        """Compile one target through the cache and return the accelerator.

        ``engine.compile(target)`` is shorthand for
        ``engine.submit(target).unwrap()``.  The loose kwarg form
        ``engine.compile(dag, image_width=..., ...)`` is deprecated; it builds
        a target internally and emits a :class:`DeprecationWarning`.
        """
        if isinstance(pipeline, CompileTarget):
            if (
                image_width is not None
                or image_height is not None
                or memory_spec is not None
                or options is not None
                or coalescing
                or label
            ):
                raise TypeError(
                    "engine.compile(target) takes no compile kwargs; derive the "
                    "target instead (target.with_options(...), .with_label(...))"
                )
            return self.submit(pipeline).unwrap()
        warnings.warn(
            "engine.compile(dag, image_width=..., ...) is deprecated; build a "
            "repro.api.CompileTarget and call engine.compile(target)",
            DeprecationWarning,
            stacklevel=2,
        )
        if image_width is None or image_height is None:
            raise TypeError("engine.compile requires image_width and image_height")
        target = CompileTarget.from_kwargs(
            pipeline,
            image_width=image_width,
            image_height=image_height,
            memory_spec=memory_spec,
            options=options,
            coalescing=coalescing,
            label=label,
        )
        return self.submit(target).unwrap()

    def submit(self, target: CompileTarget | CompileRequest) -> CompileResult:
        """Run one target inline on the calling thread, via the cache.

        Inline submits take part in the engine-wide in-flight deduplication:
        if an identical fingerprint is already being solved (by a batch, an
        async client, or another thread's inline submit), this call waits for
        that solve and reports ``source="deduplicated"`` instead of running a
        second one; otherwise it publishes its own future so concurrent
        submitters of the same target join it.
        """
        target = self._as_target(target)
        fingerprint = target.fingerprint
        future: Future = Future()
        # Mark the future running *before* publishing it: a joiner whose
        # asyncio wrapper gets cancelled would otherwise cancel() the pending
        # future and make our set_result() below raise InvalidStateError.
        future.set_running_or_notify_cancel()
        with self._lock:
            existing = self._inflight.get(fingerprint)
            if existing is None:
                self._inflight[fingerprint] = future
        if existing is not None:
            return self._collect(target, future=existing, outcome=None, owner=False)
        try:
            result = self._execute(target, fingerprint)
        except BaseException as exc:
            # _execute captures compile errors in the result; anything that
            # still escapes is fatal — propagate it to waiters before
            # unpublishing, so they never re-run the solve obliviously.
            future.set_exception(exc)
            self._clear_inflight(fingerprint)
            raise
        future.set_result(result)
        self._clear_inflight(fingerprint)
        return self._collect(target, future=None, outcome=result, owner=True)

    async def submit_async(self, target: CompileTarget | CompileRequest) -> CompileResult:
        """Await one target on the worker pool without blocking the event loop.

        The result is identical to :meth:`submit` for the same target; the
        job shares the engine's cache and in-flight dedup, so awaiting a
        design point that a concurrent batch is already solving costs
        nothing extra.
        """
        target = self._as_target(target)
        future, owner = self._enqueue(target, target.fingerprint, {})
        outcome: CompileResult = await asyncio.wrap_future(future)
        return self._collect(target, future=None, outcome=outcome, owner=owner)

    # ----------------------------------------------------------------- batch
    def submit_batch(
        self, requests: Sequence[CompileTarget | CompileRequest] | Iterable[CompileTarget | CompileRequest]
    ) -> BatchResult:
        """Compile many targets concurrently; results come back in order.

        Targets with identical fingerprints — within the batch or already in
        flight from a concurrent batch — share a single execution; the
        sharers are reported with ``source="deduplicated"``.  A failing
        target yields an error-carrying :class:`CompileResult` instead of
        raising, so one infeasible design point cannot kill a sweep.
        """
        targets = [self._as_target(request) for request in requests]
        started = time.perf_counter()
        slots = self._enqueue_all(targets)
        results = [
            self._collect(target, future=future, outcome=None, owner=owner)
            for target, future, owner in slots
        ]
        self.metrics.record_batch()
        return BatchResult(
            results=results,
            seconds=time.perf_counter() - started,
            cache_stats=self.cache.stats.snapshot(),
        )

    async def submit_batch_async(
        self, requests: Sequence[CompileTarget | CompileRequest] | Iterable[CompileTarget | CompileRequest]
    ) -> BatchResult:
        """Async twin of :meth:`submit_batch`: await a whole batch at once.

        Jobs fan out over the same worker pool and dedup machinery as the
        synchronous path, and the returned :class:`BatchResult` is equal to
        what :meth:`submit_batch` would produce for the same targets.  If the
        engine is shut down with ``cancel_pending=True`` while the batch is
        queued, the await raises :class:`asyncio.CancelledError`.
        """
        targets = [self._as_target(request) for request in requests]
        started = time.perf_counter()
        slots = self._enqueue_all(targets)
        outcomes = await asyncio.gather(
            *(asyncio.wrap_future(future) for _, future, _ in slots)
        )
        results = [
            self._collect(target, future=None, outcome=outcome, owner=owner)
            for (target, _, owner), outcome in zip(slots, outcomes)
        ]
        self.metrics.record_batch()
        return BatchResult(
            results=results,
            seconds=time.perf_counter() - started,
            cache_stats=self.cache.stats.snapshot(),
        )

    # ------------------------------------------------------------- internals
    def _enqueue(
        self, target: CompileTarget, fingerprint: str, local: dict[str, Future]
    ) -> tuple[Future, bool]:
        """Queue one target on the pool, deduplicating against ``local`` and
        the engine-wide in-flight table.  Returns ``(future, owner)``."""
        future = local.get(fingerprint)
        if future is not None:
            return future, False
        pool = self._ensure_pool()
        with self._lock:
            future = self._inflight.get(fingerprint)
            owner = future is None
            if owner:
                future = pool.submit(self._execute, target, fingerprint)
                self._inflight[fingerprint] = future
        if owner:
            # Registered outside the lock: if the job already finished, the
            # callback runs inline and must be able to take the lock.
            future.add_done_callback(lambda _f, fp=fingerprint: self._clear_inflight(fp))
        local[fingerprint] = future
        return future, owner

    def _enqueue_all(
        self, targets: list[CompileTarget]
    ) -> list[tuple[CompileTarget, Future, bool]]:
        # Batch-local duplicates always share one execution (deterministic,
        # immune to the owner finishing before the twin is enqueued).
        local: dict[str, Future] = {}
        slots = []
        for target in targets:
            future, owner = self._enqueue(target, target.fingerprint, local)
            slots.append((target, future, owner))
        return slots

    def _collect(
        self,
        target: CompileTarget,
        *,
        future: Future | None,
        outcome: CompileResult | None,
        owner: bool,
    ) -> CompileResult:
        """Finalize one job: relabel dedup sharers, record metrics."""
        if outcome is None:
            outcome = future.result()
        if owner:
            result = outcome
        else:
            result = replace(
                outcome, target=target, source=SOURCE_DEDUPLICATED, seconds=0.0
            )
        self.metrics.record(self._trace(result))
        return result

    def _clear_inflight(self, fingerprint: str) -> None:
        with self._lock:
            self._inflight.pop(fingerprint, None)

    def _execute(self, target: CompileTarget, fingerprint: str) -> CompileResult:
        started = time.perf_counter()
        try:
            accelerator = compile_pipeline(target, cache=self.cache)
        except Exception as exc:  # one bad design point must not kill a batch
            return CompileResult(
                target=target,
                fingerprint=fingerprint,
                error=f"{type(exc).__name__}: {exc}",
                seconds=time.perf_counter() - started,
            )
        sources = accelerator.metadata.get("schedule_sources", ("solver",))
        if all(source in ("memory", "disk") for source in sources):
            source = "disk" if "disk" in sources else "memory"
        else:
            source = "solver"
        return CompileResult(
            target=target,
            fingerprint=fingerprint,
            accelerator=accelerator,
            source=source,
            seconds=time.perf_counter() - started,
        )

    def _trace(self, result: CompileResult) -> RequestTrace:
        return RequestTrace(
            label=result.target.display_label,
            fingerprint=result.fingerprint,
            source=result.source,
            seconds=result.seconds,
            ok=result.ok,
        )

    # ------------------------------------------------------------ inspection
    @property
    def hit_rate(self) -> float:
        return self.cache.stats.hit_rate

    def describe(self) -> str:
        stats = self.cache.stats
        return (
            f"CompileEngine(workers={self.workers}, cache={len(self.cache)}/{self.cache.max_entries} "
            f"entries, hits={stats.hits}, misses={stats.misses}, hit_rate={stats.hit_rate:.1%})"
        )
