"""Unit tests for the PipelineSchedule artifact."""

import pytest

from repro.core.schedule import PipelineSchedule
from repro.errors import SchedulingError
from repro.memory.allocator import allocate_line_buffer
from repro.memory.spec import asic_dual_port

from tests.conftest import TEST_HEIGHT, TEST_WIDTH, build_chain

W, H = TEST_WIDTH, TEST_HEIGHT


def make_schedule():
    dag = build_chain(3, stencil=3)
    spec = asic_dual_port()
    starts = {"K0": 0, "K1": 2 * W + 1, "K2": 4 * W + 2}
    buffers = {
        "K0": allocate_line_buffer("K0", W, 3, spec, reader_heights={"K1": 3}),
        "K1": allocate_line_buffer("K1", W, 3, spec, reader_heights={"K2": 3}),
    }
    return PipelineSchedule(
        dag=dag,
        image_width=W,
        image_height=H,
        memory_spec=spec,
        start_cycles=starts,
        line_buffers=buffers,
        generator="test",
    )


class TestSchedule:
    def test_missing_start_cycle_rejected(self):
        dag = build_chain(3)
        with pytest.raises(SchedulingError):
            PipelineSchedule(
                dag=dag,
                image_width=W,
                image_height=H,
                memory_spec=asic_dual_port(),
                start_cycles={"K0": 0},
                line_buffers={},
            )

    def test_delays(self):
        schedule = make_schedule()
        assert schedule.delay("K0", "K1") == 2 * W + 1
        assert schedule.max_delay("K0") == 2 * W + 1
        assert schedule.max_delay("K2") == 0

    def test_unknown_stage(self):
        schedule = make_schedule()
        with pytest.raises(SchedulingError):
            schedule.start("missing")

    def test_throughput_and_latency(self):
        schedule = make_schedule()
        assert schedule.steady_state_throughput == 1.0
        assert schedule.pixels_per_frame == W * H
        assert schedule.end_to_end_latency_cycles == (4 * W + 2) + W * H
        assert schedule.startup_latency_cycles == 4 * W + 3

    def test_memory_totals(self):
        schedule = make_schedule()
        assert schedule.total_line_slots == 6
        assert schedule.total_blocks == 6
        assert schedule.total_allocated_bits == 6 * asic_dual_port().block_bits
        assert schedule.total_data_kbytes == pytest.approx(6 * W * 16 / 8192)

    def test_describe_mentions_generator_and_stages(self):
        text = make_schedule().describe()
        assert "test" in text
        for name in ("K0", "K1", "K2"):
            assert name in text
