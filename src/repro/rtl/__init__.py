"""Synthesizable Verilog generation and structural linting."""

from repro.rtl.generator import generate_verilog, VerilogDesign
from repro.rtl.lint import lint_verilog, LintReport

__all__ = ["generate_verilog", "VerilogDesign", "lint_verilog", "LintReport"]
