"""Unit tests for DAG traversal helpers."""

import pytest

from repro.errors import GraphError
from repro.ir.dag import PipelineDAG, Stage
from repro.ir.stencil import StencilWindow
from repro.ir.traversal import (
    ancestors_of,
    longest_path_lengths,
    partial_order,
    pipeline_depth,
    precedes,
    reachable_from,
    topological_order,
)

from tests.conftest import build_paper_example


def diamond() -> PipelineDAG:
    dag = PipelineDAG("diamond")
    for name, kwargs in (
        ("A", {"is_input": True}),
        ("B", {}),
        ("C", {}),
        ("D", {"is_output": True}),
    ):
        dag.add_stage(Stage(name, **kwargs))
    dag.add_edge("A", "B", StencilWindow.from_extent(3, 3))
    dag.add_edge("A", "C", StencilWindow.from_extent(1, 1))
    dag.add_edge("B", "D", StencilWindow.from_extent(3, 3))
    dag.add_edge("C", "D", StencilWindow.from_extent(1, 1))
    return dag


class TestTopologicalOrder:
    def test_respects_edges(self):
        order = topological_order(diamond())
        assert order.index("A") < order.index("B") < order.index("D")
        assert order.index("A") < order.index("C") < order.index("D")

    def test_detects_cycles(self):
        dag = PipelineDAG()
        dag.add_stage(Stage("A", is_input=True))
        dag.add_stage(Stage("B", is_output=True))
        dag.add_edge("A", "B", StencilWindow.point())
        dag.add_edge("B", "A", StencilWindow.point())
        with pytest.raises(GraphError):
            topological_order(dag)

    def test_includes_every_stage_once(self):
        order = topological_order(build_paper_example())
        assert sorted(order) == sorted(build_paper_example().stage_names())


class TestReachability:
    def test_reachable_from_input(self):
        assert reachable_from(diamond(), "A") == {"B", "C", "D"}

    def test_reachable_from_leaf_is_empty(self):
        assert reachable_from(diamond(), "D") == set()

    def test_ancestors(self):
        assert ancestors_of(diamond(), "D") == {"A", "B", "C"}
        assert ancestors_of(diamond(), "A") == set()


class TestPartialOrder:
    def test_reflexive(self):
        order = partial_order(diamond())
        for name in ("A", "B", "C", "D"):
            assert name in order[name]

    def test_follows_dependencies(self):
        order = partial_order(diamond())
        assert precedes(order, "A", "D")
        assert precedes(order, "B", "D")
        assert not precedes(order, "B", "C")
        assert not precedes(order, "D", "A")

    def test_unknown_stage_raises(self):
        order = partial_order(diamond())
        with pytest.raises(GraphError):
            precedes(order, "missing", "A")

    def test_paper_example_order(self):
        dag = build_paper_example()
        order = partial_order(dag)
        assert precedes(order, "K1", "K2")
        assert precedes(order, "K0", "K2")
        assert not precedes(order, "K2", "K1")


class TestLongestPath:
    def test_unweighted_depth(self):
        lengths = longest_path_lengths(diamond())
        assert lengths["A"] == 0
        assert lengths["D"] == 2
        assert pipeline_depth(diamond()) == 3

    def test_weighted_by_stencil(self):
        lengths = longest_path_lengths(diamond(), weight_fn=lambda e: e.window.height)
        assert lengths["D"] == 6  # A -3-> B -3-> D
