"""Simulators: cycle-level line-buffer legality/accounting and functional execution."""

from repro.sim.batch import (
    BatchReplay,
    golden_frames,
    output_digest,
    replay_frames,
    replay_frames_loop,
)
from repro.sim.cycle import (
    BufferStats,
    LegalityReport,
    LegalityViolation,
    SimulationReport,
    check_schedule_legality,
    simulate_schedule,
)
from repro.sim.functional import run_functional, FunctionalResult

__all__ = [
    "SimulationReport",
    "BufferStats",
    "LegalityReport",
    "LegalityViolation",
    "check_schedule_legality",
    "simulate_schedule",
    "run_functional",
    "FunctionalResult",
    "BatchReplay",
    "golden_frames",
    "output_digest",
    "replay_frames",
    "replay_frames_loop",
]
