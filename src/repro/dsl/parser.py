"""Recursive-descent parser for the textual DSL.

Grammar (EBNF)::

    program    := statement+
    statement  := "input" NAME ";"
                | ["output"] NAME "=" "im" "(" NAME "," NAME ["," NAME] ")"
                  expr "end" [";"]
    expr       := comparison
    comparison := additive (("<"|">"|"<="|">="|"=="|"!=") additive)?
    additive   := term (("+"|"-") term)*
    term       := factor (("*"|"/"|"//") factor)*
    factor     := NUMBER | "-" factor | "(" expr ")" | call | reference | prev
    call       := NAME "(" expr ("," expr)* ")"       (for intrinsic names)
    reference  := NAME "(" offset "," offset ["," offset] ")"
    prev       := "prev" "(" NAME ["," NUMBER] ")"
    offset     := (XVAR|YVAR|TVAR) (("+"|"-") NUMBER)? | ("-")? NUMBER

The parser produces a validated :class:`repro.ir.dag.PipelineDAG` whose edges
carry stencil windows derived from the reference offsets.

Temporal pipelines declare a third loop variable in the ``im`` header —
``im(x, y, t)`` — and may then give references a third (frame) offset,
``K0(x-1, y, t-1)``.  ``prev(K0)`` / ``prev(K0, n)`` is shorthand for the
producer read at the same pixel ``n`` frames ago (``K0(x, y, t-n)``); it is
accepted with or without the temporal header.
"""

from __future__ import annotations

from repro.dsl import ast
from repro.dsl.lexer import Token, tokenize
from repro.errors import DSLSemanticError, DSLSyntaxError
from repro.ir.dag import PipelineDAG, Stage
from repro.ir.stencil import StencilWindow

_INTRINSICS = {"abs", "min", "max", "sqrt", "clamp", "select"}


class _Parser:
    def __init__(self, tokens: list[Token], name: str) -> None:
        self._tokens = tokens
        self._pos = 0
        self._name = name
        self._x_var = "x"
        self._y_var = "y"
        self._t_var: str | None = None
        self._defined: list[str] = []
        self._inputs: set[str] = set()
        self._outputs: set[str] = set()
        self._expressions: dict[str, ast.Expr] = {}

    # ----------------------------------------------------------- token utils
    def _peek(self) -> Token:
        return self._tokens[self._pos]

    def _advance(self) -> Token:
        token = self._tokens[self._pos]
        self._pos += 1
        return token

    def _expect(self, kind: str, value: str | None = None) -> Token:
        token = self._peek()
        if token.kind != kind or (value is not None and token.value != value):
            expectation = value if value is not None else kind
            raise DSLSyntaxError(
                f"Expected {expectation!r} but found {token.value or token.kind!r}",
                token.line,
                token.column,
            )
        return self._advance()

    def _match(self, kind: str, value: str | None = None) -> bool:
        token = self._peek()
        if token.kind == kind and (value is None or token.value == value):
            self._advance()
            return True
        return False

    # ------------------------------------------------------------- program
    def parse(self) -> PipelineDAG:
        while self._peek().kind != "eof":
            self._statement()
        return self._build_dag()

    def _statement(self) -> None:
        token = self._peek()
        if token.kind == "keyword" and token.value == "input":
            self._advance()
            name = self._expect("name").value
            self._expect("symbol", ";")
            self._declare(name, is_input=True)
            return

        is_output = False
        if token.kind == "keyword" and token.value == "output":
            self._advance()
            is_output = True
        name_token = self._expect("name")
        name = name_token.value
        self._expect("symbol", "=")
        self._expect("keyword", "im")
        self._expect("symbol", "(")
        self._x_var = self._expect("name").value
        self._expect("symbol", ",")
        self._y_var = self._expect("name").value
        self._t_var = None
        if self._match("symbol", ","):
            self._t_var = self._expect("name").value
        self._expect("symbol", ")")
        expression = self._expr()
        self._expect("keyword", "end")
        self._match("symbol", ";")

        self._declare(name, is_input=False, is_output=is_output)
        self._expressions[name] = expression

    def _declare(self, name: str, is_input: bool, is_output: bool = False) -> None:
        if name in self._defined:
            raise DSLSemanticError(f"Stage {name!r} defined more than once")
        self._defined.append(name)
        if is_input:
            self._inputs.add(name)
        if is_output:
            self._outputs.add(name)

    # ------------------------------------------------------------ expressions
    def _expr(self) -> ast.Expr:
        return self._comparison()

    def _comparison(self) -> ast.Expr:
        left = self._additive()
        token = self._peek()
        if token.kind == "symbol" and token.value in ("<", ">", "<=", ">=", "==", "!="):
            op = self._advance().value
            right = self._additive()
            return ast.BinOp(op, left, right)
        return left

    def _additive(self) -> ast.Expr:
        expr = self._term()
        while True:
            token = self._peek()
            if token.kind == "symbol" and token.value in ("+", "-"):
                op = self._advance().value
                expr = ast.BinOp(op, expr, self._term())
            else:
                return expr

    def _term(self) -> ast.Expr:
        expr = self._factor()
        while True:
            token = self._peek()
            if token.kind == "symbol" and token.value in ("*", "/", "//"):
                op = self._advance().value
                expr = ast.BinOp(op, expr, self._factor())
            else:
                return expr

    def _factor(self) -> ast.Expr:
        token = self._peek()
        if token.kind == "number":
            self._advance()
            return ast.Const(float(token.value))
        if token.kind == "symbol" and token.value == "-":
            self._advance()
            return ast.UnaryOp("-", self._factor())
        if token.kind == "symbol" and token.value == "(":
            self._advance()
            expr = self._expr()
            self._expect("symbol", ")")
            return expr
        if token.kind == "name":
            return self._call_or_reference()
        raise DSLSyntaxError(
            f"Unexpected token {token.value or token.kind!r} in expression",
            token.line,
            token.column,
        )

    def _call_or_reference(self) -> ast.Expr:
        name_token = self._expect("name")
        name = name_token.value
        self._expect("symbol", "(")
        if name in _INTRINSICS:
            args = [self._expr()]
            while self._match("symbol", ","):
                args.append(self._expr())
            self._expect("symbol", ")")
            return ast.Call(name, tuple(args))
        if name == "prev" and name not in self._defined:
            return self._prev_reference(name_token)
        dx = self._offset(self._x_var, name_token)
        self._expect("symbol", ",")
        dy = self._offset(self._y_var, name_token)
        dt = 0
        if self._match("symbol", ","):
            if self._t_var is None:
                raise DSLSyntaxError(
                    "Frame offsets need a temporal im(x, y, t) header",
                    name_token.line,
                    name_token.column,
                )
            dt = self._offset(self._t_var, name_token)
        self._expect("symbol", ")")
        return ast.StageRef(name, dx, dy, dt)

    def _prev_reference(self, context: Token) -> ast.Expr:
        """``prev(K0)`` / ``prev(K0, n)``: producer at the same pixel n frames ago."""
        producer = self._expect("name").value
        frames = 1
        if self._match("symbol", ","):
            number = self._expect("number")
            frames = int(float(number.value))
            if frames < 1:
                raise DSLSyntaxError(
                    f"prev() frame count must be >= 1, got {frames}",
                    number.line,
                    number.column,
                )
        self._expect("symbol", ")")
        return ast.StageRef(producer, 0, 0, -frames)

    def _offset(self, axis_var: str, context: Token) -> int:
        token = self._peek()
        if token.kind == "name":
            if token.value != axis_var:
                raise DSLSyntaxError(
                    f"Expected loop variable {axis_var!r} in stage reference",
                    token.line,
                    token.column,
                )
            self._advance()
            next_token = self._peek()
            if next_token.kind == "symbol" and next_token.value in ("+", "-"):
                sign = 1 if self._advance().value == "+" else -1
                number = self._expect("number")
                return sign * int(float(number.value))
            return 0
        if token.kind == "symbol" and token.value == "-":
            self._advance()
            number = self._expect("number")
            return -int(float(number.value))
        if token.kind == "number":
            self._advance()
            return int(float(token.value))
        raise DSLSyntaxError(
            f"Malformed offset in reference near {context.value!r}",
            token.line,
            token.column,
        )

    # ---------------------------------------------------------------- output
    def _build_dag(self) -> PipelineDAG:
        dag = PipelineDAG(self._name)
        if not self._defined:
            raise DSLSemanticError("Empty DSL program")
        outputs = set(self._outputs)
        if not outputs:
            # The last defined non-input stage is implicitly the output.
            non_inputs = [n for n in self._defined if n not in self._inputs]
            if not non_inputs:
                raise DSLSemanticError("Program defines only input stages")
            outputs = {non_inputs[-1]}

        for name in self._defined:
            dag.add_stage(
                Stage(
                    name=name,
                    is_input=name in self._inputs,
                    is_output=name in outputs,
                    expression=self._expressions.get(name),
                )
            )

        for name, expression in self._expressions.items():
            windows = ast.stencil_windows(expression)
            if not windows:
                raise DSLSemanticError(f"Stage {name!r} does not read any producer")
            for producer, window in windows.items():
                if producer not in dag:
                    raise DSLSemanticError(
                        f"Stage {name!r} references undefined stage {producer!r}"
                    )
                if self._defined.index(producer) >= self._defined.index(name):
                    raise DSLSemanticError(
                        f"Stage {name!r} references {producer!r} before it is defined"
                    )
                dag.add_edge(producer, name, _anchor(window))
        return dag.validated()


def _anchor(window: StencilWindow) -> StencilWindow:
    """Keep the window's true offsets; scheduling uses only its extent."""
    return window


def parse_pipeline(source: str, name: str = "pipeline") -> PipelineDAG:
    """Parse DSL source text into a validated :class:`PipelineDAG`."""
    tokens = tokenize(source)
    return _Parser(tokens, name).parse()
