"""Unit tests for ILP variables and linear expressions."""

import pytest

from repro.errors import ILPError
from repro.ilp.expr import LinExpr, linear_sum
from repro.ilp.model import Model


@pytest.fixture
def model():
    return Model("t")


class TestLinExpr:
    def test_variable_arithmetic(self, model):
        x = model.add_var("x")
        y = model.add_var("y")
        expr = 2 * x + y - 3
        assert expr.coefficient(x) == 2
        assert expr.coefficient(y) == 1
        assert expr.constant == -3

    def test_addition_merges_terms(self, model):
        x = model.add_var("x")
        expr = x + x + 1 + x
        assert expr.coefficient(x) == 3
        assert expr.constant == 1

    def test_subtraction_and_negation(self, model):
        x = model.add_var("x")
        y = model.add_var("y")
        expr = -(x - y)
        assert expr.coefficient(x) == -1
        assert expr.coefficient(y) == 1

    def test_rsub(self, model):
        x = model.add_var("x")
        expr = 5 - x
        assert expr.constant == 5
        assert expr.coefficient(x) == -1

    def test_scaling(self, model):
        x = model.add_var("x")
        expr = (x + 2) * 3
        assert expr.coefficient(x) == 3
        assert expr.constant == 6

    def test_nonlinear_scaling_rejected(self, model):
        x = model.add_var("x")
        y = model.add_var("y")
        with pytest.raises(ILPError):
            (x + 1) * (y + 1)

    def test_evaluate(self, model):
        x = model.add_var("x")
        y = model.add_var("y")
        expr = 2 * x - y + 1
        assert expr.evaluate({x: 3, y: 4}) == 3

    def test_evaluate_missing_value(self, model):
        x = model.add_var("x")
        with pytest.raises(ILPError):
            (x + 1).evaluate({})

    def test_is_constant(self, model):
        x = model.add_var("x")
        assert LinExpr({}, 4.0).is_constant()
        assert not (x + 1).is_constant()
        assert (x - x).is_constant()

    def test_linear_sum(self, model):
        xs = [model.add_var(f"x{i}") for i in range(4)]
        expr = linear_sum(xs)
        assert all(expr.coefficient(x) == 1 for x in xs)

    def test_coerce_rejects_strings(self, model):
        x = model.add_var("x")
        with pytest.raises(ILPError):
            x + "nope"

    def test_from_terms(self, model):
        x = model.add_var("x")
        expr = LinExpr.from_terms([(2.0, x), (3.0, x)], constant=1.0)
        assert expr.coefficient(x) == 5.0
        assert expr.constant == 1.0


class TestComparisons:
    def test_le_builds_constraint(self, model):
        x = model.add_var("x")
        constraint = x + 1 <= 5
        assert constraint.sense == "<="
        assert constraint.rhs == 4

    def test_ge_builds_constraint(self, model):
        x = model.add_var("x")
        y = model.add_var("y")
        constraint = x - y >= 3
        assert constraint.sense == ">="
        assert constraint.rhs == 3

    def test_eq_method(self, model):
        x = model.add_var("x")
        constraint = (x + 2).eq(7)
        assert constraint.sense == "=="
        assert constraint.rhs == 5

    def test_constraint_satisfaction(self, model):
        x = model.add_var("x")
        constraint = x >= 2
        assert constraint.satisfied_by({x: 2})
        assert not constraint.satisfied_by({x: 1})
