"""Constraint generation for the scheduling ILP (paper Sec. 5.2-5.3).

Three families of constraints are produced from a pipeline DAG:

* **Data dependency** (Eq. 1b): for every producer->consumer edge,
  ``S_c - S_p >= (SH_c - 1) * W + 1``.
* **Memory contention** (Eq. 1c / Eq. 12): for every line buffer whose
  accessor count exceeds the port count, every ``(P+1)``-combination of
  accessors must contain at least one *separated pair* — a disjunction of
  pairwise separation constraints.
* **Coalescing safety** (Sec. 6): when a buffer packs ``F > 1`` lines per
  block, every consumer must trail the writer by a full stencil height so the
  writer's block never collects more accesses than it has ports.

Pairwise separation gaps
------------------------
For a pair where the *trailing* stage reads ``SH`` lines of the buffer and the
*leading* stage is the writer, the gap is ``SH * W`` (Eq. 12 with the trailing
stage's stencil height).  For a pair of two consumers of a buffer coalesced
with factor ``F``, the trailing consumer's window must additionally clear the
block boundary, giving ``(SH + F - 1) * W``; with ``F = 1`` this reduces to the
same ``SH * W``.

Contention constraints are produced as :class:`Disjunction` objects; the
scheduler decides how to realise the OR (pruning to a single member, big-M
indicator variables, or sub-problem enumeration).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.core.access import Accessor
from repro.ir.dag import PipelineDAG
from repro.ir.traversal import partial_order


@dataclass(frozen=True)
class DependencyConstraint:
    """``S_consumer - S_producer >= min_delay`` (Eq. 1b)."""

    producer: str
    consumer: str
    min_delay: int


@dataclass(frozen=True)
class PairSeparation:
    """One candidate contention constraint: ``trailing`` stays strictly behind ``leading``.

    Linear form: ``S_trailing - S_leading >= min_gap``.
    """

    buffer: str
    trailing: str
    leading: str
    stencil_height: int
    min_gap: int


@dataclass
class Disjunction:
    """At least one of ``candidates`` must hold (one per (P+1)-combination)."""

    buffer: str
    combination: tuple[str, ...]
    candidates: list[PairSeparation] = field(default_factory=list)

    @property
    def is_singleton(self) -> bool:
        return len(self.candidates) == 1

    @property
    def is_empty(self) -> bool:
        return not self.candidates


def buffer_accessors(dag: PipelineDAG, producer: str) -> list[Accessor]:
    """The set N_p: stages touching the line buffer of ``producer`` (line heights)."""
    accessors = [Accessor(stage=producer, stencil_height=1, is_writer=True)]
    for edge in dag.out_edges(producer):
        accessors.append(Accessor(stage=edge.consumer, stencil_height=edge.window.height))
    return accessors


def data_dependency_constraints(dag: PipelineDAG, image_width: int) -> list[DependencyConstraint]:
    """Eq. 1b for every edge of the DAG."""
    constraints = []
    for edge in dag.edges():
        min_delay = (edge.window.height - 1) * image_width + 1
        constraints.append(
            DependencyConstraint(producer=edge.producer, consumer=edge.consumer, min_delay=min_delay)
        )
    return constraints


def coalescing_safety_constraints(
    dag: PipelineDAG, image_width: int, coalesce_factors: dict[str, int]
) -> list[DependencyConstraint]:
    """Hard writer-separation constraints for every coalesced buffer (Sec. 6).

    With ``F > 1`` lines per block the consumer may legally hit one block with
    up to ``F`` reads, so the writer's block must never also be covered by the
    consumer's window: the consumer trails by its full stencil height,
    ``S_c - S_p >= SH_c * W``.
    """
    constraints = []
    for producer, factor in coalesce_factors.items():
        if factor <= 1 or producer not in dag:
            continue
        for edge in dag.out_edges(producer):
            constraints.append(
                DependencyConstraint(
                    producer=producer,
                    consumer=edge.consumer,
                    min_delay=edge.window.height * image_width,
                )
            )
    return constraints


def pair_gap(
    trailing: Accessor, leading: Accessor, image_width: int, coalesce_factor: int
) -> int:
    """Minimum start-cycle gap for the trailing accessor to clear the leading one."""
    gap = trailing.stencil_height * image_width
    if coalesce_factor > 1 and not leading.is_writer:
        gap += (coalesce_factor - 1) * image_width
    return gap


def contention_disjunctions(
    dag: PipelineDAG,
    image_width: int,
    ports: int,
    coalesce_factors: dict[str, int] | None = None,
    order: dict[str, set[str]] | None = None,
) -> list[Disjunction]:
    """Eq. 5 instantiated for every over-subscribed line buffer.

    For each producer ``p`` whose buffer is touched by more than ``ports``
    stages, and for each ``(ports+1)``-combination of those accessors, build
    the list of candidate pair separations whose disjunction enforces an empty
    intersection.  Orientations that contradict the data-dependency partial
    order (the trailing stage being an ancestor of the leading stage) are
    dropped because they can never be satisfied.
    """
    if ports < 1:
        raise ValueError("Port count must be at least 1")
    factors = coalesce_factors or {}
    order = order if order is not None else partial_order(dag)
    disjunctions: list[Disjunction] = []

    for producer in dag.stage_names():
        consumers = dag.consumers_of(producer)
        if not consumers:
            continue
        factor = max(1, factors.get(producer, 1))
        accessors = buffer_accessors(dag, producer)
        by_name = {a.stage: a for a in accessors}

        if factor > 1:
            # Coalesced buffer (Sec. 6): a single consumer may already place up
            # to ``factor`` accesses on one block, so the line-granularity
            # combination argument no longer applies.  Writer separation is a
            # hard constraint (coalescing_safety_constraints); here every pair
            # of consumers must keep their windows in disjoint blocks, with the
            # orientation left as a (two-way) disjunction when the DAG imposes
            # no order.
            if len(consumers) < 2:
                continue
            for pair in itertools.combinations(sorted(consumers), 2):
                candidates: list[PairSeparation] = []
                for trailing_name, leading_name in itertools.permutations(pair, 2):
                    if leading_name in order[trailing_name]:
                        continue
                    trailing = by_name[trailing_name]
                    leading = by_name[leading_name]
                    candidates.append(
                        PairSeparation(
                            buffer=producer,
                            trailing=trailing_name,
                            leading=leading_name,
                            stencil_height=trailing.stencil_height,
                            min_gap=pair_gap(trailing, leading, image_width, factor),
                        )
                    )
                disjunctions.append(
                    Disjunction(buffer=producer, combination=tuple(pair), candidates=candidates)
                )
            continue

        if len(accessors) <= ports:
            continue

        for combination in itertools.combinations(sorted(by_name), ports + 1):
            candidates: list[PairSeparation] = []
            for trailing_name, leading_name in itertools.permutations(combination, 2):
                trailing = by_name[trailing_name]
                leading = by_name[leading_name]
                # The writer can never trail one of its own consumers.
                if trailing.is_writer:
                    continue
                # If the leading stage depends on the trailing one, the trailing
                # stage necessarily starts earlier and can never be behind.
                if trailing_name != leading_name and leading_name in order[trailing_name]:
                    continue
                candidates.append(
                    PairSeparation(
                        buffer=producer,
                        trailing=trailing_name,
                        leading=leading_name,
                        stencil_height=trailing.stencil_height,
                        min_gap=pair_gap(trailing, leading, image_width, factor),
                    )
                )
            disjunctions.append(
                Disjunction(buffer=producer, combination=tuple(combination), candidates=candidates)
            )
    return disjunctions


def schedule_horizon(dag: PipelineDAG, image_width: int) -> int:
    """A safe upper bound on any optimal start cycle (used for variable bounds and big-M)."""
    total = image_width  # slack
    for edge in dag.edges():
        total += (edge.window.height + 2) * image_width + 2
    return total
