"""Property test: reserved-table legality == event-walk on random schedules.

``check_schedule_legality`` replaces an O(cycles) event walk with closed-form
R1/R2 tests plus a periodic R3 reservation table.  The property pins the only
contract that matters: for *any* schedule — legal or broken, because start
cycles are randomly perturbed away from the solver's answer — both checkers
report exactly the same set of ``(rule, producer, consumer)`` violation keys.
"""

from __future__ import annotations

from dataclasses import replace

from hypothesis import given, settings, strategies as st

from repro.core.compiler import compile_pipeline
from repro.dsl.builder import PipelineBuilder, window_sum
from repro.memory.spec import asic_dual_port, asic_single_port
from repro.sim.cycle import check_schedule_legality, simulate_schedule

W, H = 32, 24


def random_chain_dag(num_stages: int, stencils: list[int], fan_in: list[int]):
    """A chain with optional skip-edges: stage i reads stage i-1 and, when
    ``fan_in[i]`` reaches further back, an earlier stage too."""
    builder = PipelineBuilder(f"prop-{num_stages}")
    handles = [builder.input("K0")]
    for index in range(1, num_stages):
        size = stencils[index - 1]
        expr = (
            window_sum(handles[-1], size, size)
            if size > 1
            else handles[-1](0, 0)
        )
        back = fan_in[index - 1]
        if back > 0 and index - 1 - back >= 0:
            extra = handles[index - 1 - back]
            expr = expr + extra(0, 0)
        handles.append(builder.stage(f"K{index}", expr))
    builder.dag.stage(handles[-1].name).is_output = True
    return builder.dag.validated()


@st.composite
def perturbed_schedule(draw):
    """Compile a random pipeline, then shove its start cycles around."""
    num_stages = draw(st.integers(2, 5))
    stencils = [draw(st.sampled_from([1, 2, 3, 5])) for _ in range(num_stages - 1)]
    fan_in = [draw(st.integers(0, 2)) for _ in range(num_stages - 1)]
    dag = random_chain_dag(num_stages, stencils, fan_in)
    spec = draw(st.sampled_from([asic_dual_port(), asic_single_port()]))
    schedule = compile_pipeline(
        dag, image_width=W, image_height=H, memory_spec=spec
    ).schedule
    # Perturbations biased toward "too early" (negative), which is where the
    # interesting R1/R3 violations live; 0 keeps some legal schedules in play.
    deltas = {
        name: draw(st.sampled_from([0, 0, -1, -W, -(2 * W), -(2 * W + 1), W]))
        for name in schedule.start_cycles
    }
    starts = {
        name: max(0, start + deltas[name])
        for name, start in schedule.start_cycles.items()
    }
    return replace(schedule, start_cycles=starts)


@settings(max_examples=30, deadline=None)
@given(schedule=perturbed_schedule())
def test_reserved_table_agrees_with_event_walk(schedule):
    fast = check_schedule_legality(schedule, max_rows=H)
    walk = simulate_schedule(schedule, max_rows=H, max_violations=1_000_000)
    assert fast.keys() == walk.violation_keys
    assert fast.ok == (not walk.violation_keys)
