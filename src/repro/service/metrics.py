"""Per-engine request metrics: latency, throughput and cache effectiveness.

Stability: public.

The engine records one :class:`RequestTrace` per job into a bounded ring and
keeps aggregate counters, so long-running services can expose hit rates and
latency percentiles without unbounded memory growth.  Jobs shed by the
admission queue arrive as traces with ``source="rejected"`` and count toward
``errors``; the queue's own ``rejected_total`` counter (surfaced on
``GET /v1/metrics``) is the authoritative shed count.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass, field


@dataclass(frozen=True)
class RequestTrace:
    """One completed compile job, as seen by the engine."""

    label: str
    fingerprint: str
    source: str
    seconds: float
    ok: bool


@dataclass
class EngineMetrics:
    """Aggregate counters plus a bounded window of recent request traces."""

    requests: int = 0
    compiled: int = 0
    served_from_cache: int = 0
    deduplicated: int = 0
    errors: int = 0
    batches: int = 0
    total_seconds: float = 0.0
    recent: deque = field(default_factory=lambda: deque(maxlen=256))
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    def record(self, trace: RequestTrace) -> None:
        with self._lock:
            self.requests += 1
            self.total_seconds += trace.seconds
            if not trace.ok:
                self.errors += 1
            elif trace.source in ("memory", "disk"):
                self.served_from_cache += 1
            elif trace.source == "deduplicated":
                self.deduplicated += 1
            else:
                self.compiled += 1
            self.recent.append(trace)

    def record_batch(self) -> None:
        with self._lock:
            self.batches += 1

    @property
    def mean_seconds(self) -> float:
        return self.total_seconds / self.requests if self.requests else 0.0

    def latency_percentile(self, fraction: float) -> float:
        """Latency percentile (0..1) over the recent-trace window."""
        with self._lock:
            latencies = sorted(trace.seconds for trace in self.recent)
        return self._percentile_of(latencies, fraction)

    @staticmethod
    def _percentile_of(latencies: list[float], fraction: float) -> float:
        if not latencies:
            return 0.0
        index = min(len(latencies) - 1, int(round(fraction * (len(latencies) - 1))))
        return latencies[index]

    def summary(self) -> dict[str, float | int]:
        with self._lock:
            latencies = sorted(trace.seconds for trace in self.recent)
            return {
                "requests": self.requests,
                "compiled": self.compiled,
                "served_from_cache": self.served_from_cache,
                "deduplicated": self.deduplicated,
                "errors": self.errors,
                "batches": self.batches,
                "total_seconds": round(self.total_seconds, 6),
                "mean_seconds": round(self.mean_seconds, 6),
                "p50_seconds": round(self._percentile_of(latencies, 0.50), 6),
                "p95_seconds": round(self._percentile_of(latencies, 0.95), 6),
            }
