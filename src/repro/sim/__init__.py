"""Simulators: cycle-level line-buffer legality/accounting and functional execution."""

from repro.sim.cycle import SimulationReport, BufferStats, simulate_schedule
from repro.sim.functional import run_functional, FunctionalResult

__all__ = [
    "SimulationReport",
    "BufferStats",
    "simulate_schedule",
    "run_functional",
    "FunctionalResult",
]
