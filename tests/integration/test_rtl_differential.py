"""Differential harness: three models of every catalog design must agree.

For every catalog algorithm under all four generators, this suite pins the
three models of one compiled design against each other:

* **functional replay** (``repro.sim.batch.replay_frames``) — the golden
  frame-level semantics of the DAG,
* **schedule event walk** (``repro.sim.cycle.simulate_schedule``) — the
  cycle-level legality model (R1–R3/FB),
* **RTL simulation** (``repro.rtl``) — the elaborated generated Verilog,
  streamed cycle-style over the same seeded frames.

The RTL outputs must match the functional replay bit-exactly, the achieved
cycles/frame must stay within the schedule's bound, and the event walk must
report zero violations.  On top of the cross-model checks, the generated
source bytes and the RTL output digests are pinned in
``tests/data/rtl_digests.json`` (alongside ``regression_2d_pins.json``) so
codegen drift is caught byte-level even when the three models drift together.
"""

from __future__ import annotations

import hashlib
import json
from functools import lru_cache
from pathlib import Path

import numpy as np
import pytest

from repro import compile_pipeline
from repro.algorithms import ALGORITHM_NAMES, build_algorithm
from repro.api import CompileTarget
from repro.rtl import elaborate_design, generate_verilog, measure_performance, rtl_replay
from repro.sim.batch import replay_frames
from repro.sim.cycle import simulate_schedule

PINS_PATH = Path(__file__).parent.parent / "data" / "rtl_digests.json"
PINS = json.loads(PINS_PATH.read_text())
META = PINS["_meta"]

GENERATORS = ("imagen", "darkroom", "soda", "fixynn")
COMBOS = [
    (name, generator)
    for name in sorted(n for n in PINS if n != "_meta")
    for generator in GENERATORS
]


def test_pins_cover_the_whole_catalog():
    assert sorted(n for n in PINS if n != "_meta") == sorted(ALGORITHM_NAMES)


@lru_cache(maxsize=None)
def _schedule(name: str, generator: str):
    target = CompileTarget(
        build_algorithm(name),
        image_width=META["image_width"],
        image_height=META["image_height"],
        generator=generator,
    )
    return compile_pipeline(target).schedule


@lru_cache(maxsize=None)
def _source(name: str, generator: str) -> str:
    return generate_verilog(_schedule(name, generator))


@lru_cache(maxsize=None)
def _rtl(name: str, generator: str):
    return rtl_replay(
        _schedule(name, generator),
        frames=META["frames"],
        seed=META["seed"],
        source=_source(name, generator),
    )


@pytest.mark.parametrize("name,generator", COMBOS)
def test_rtl_matches_functional_replay(name, generator):
    """RTL sim ≡ golden replay, bit-exactly, per output array."""
    result = _rtl(name, generator)
    replay = replay_frames(
        _schedule(name, generator).dag,
        META["image_width"],
        META["image_height"],
        frames=META["frames"],
        seed=META["seed"],
    )
    assert result.digest == replay.digest, f"{name}/{generator} RTL output diverged"
    assert sorted(result.outputs) == sorted(replay.outputs)
    for stage, stack in replay.outputs.items():
        assert np.array_equal(result.outputs[stage], stack), f"{name}/{generator}:{stage}"


@pytest.mark.parametrize("name,generator", COMBOS)
def test_cycles_within_schedule_bound(name, generator):
    """Achieved cycles/frame from the RTL run stays within the ILP's bound."""
    schedule = _schedule(name, generator)
    result = _rtl(name, generator)
    bound = schedule.end_to_end_latency_cycles
    assert result.cycles_per_frame <= bound, (
        f"{name}/{generator}: achieved {result.cycles_per_frame} > bound {bound}"
    )
    design = elaborate_design(_source(name, generator), schedule.dag)
    perf = measure_performance(design, schedule.image_height, bound_cycles=bound)
    assert perf["passed"] is True
    assert perf["initiation_interval"] == schedule.image_width * schedule.image_height


@pytest.mark.parametrize("name,generator", COMBOS)
def test_event_walk_reports_no_violations(name, generator):
    """The third model — the schedule event walk — agrees the design is legal."""
    report = simulate_schedule(_schedule(name, generator))
    assert report.ok, f"{name}/{generator}: {report.violations[:3]}"


@pytest.mark.parametrize("name,generator", COMBOS)
def test_rtl_digests_pinned(name, generator):
    """Generated source bytes and RTL output digests match the recorded pins."""
    entry = PINS[name]
    source = _source(name, generator)
    assert (
        hashlib.sha256(source.encode("utf-8")).hexdigest()
        == entry[f"verilog_sha256:{generator}"]
    ), f"{name}/{generator}: generated Verilog bytes moved"
    result = _rtl(name, generator)
    assert result.digest == entry[f"rtl_digest:{generator}"], (
        f"{name}/{generator}: RTL output digest moved"
    )
    assert result.cycles_per_frame == entry[f"cycles_per_frame:{generator}"]
