"""Frame buffers: config record, allocator derivation, schedule and estimates."""

from __future__ import annotations

import pytest

from repro.api.target import CompileTarget
from repro.core.compiler import compile_target
from repro.dsl.builder import PipelineBuilder, temporal_average
from repro.errors import AllocationError
from repro.estimate.area import area_report
from repro.estimate.power import frame_buffer_access_rates, power_report
from repro.estimate.report import accelerator_report
from repro.memory.allocator import allocate_frame_buffer, derive_frame_buffers
from repro.memory.linebuffer import FrameBufferConfig
from repro.memory.spec import asic_dual_port

from tests.conftest import TEST_HEIGHT, TEST_WIDTH, build_chain


def build_temporal_pipeline():
    builder = PipelineBuilder("tavg")
    f0 = builder.input("F0")
    blur = builder.stage("B0", (f0(-1, 0) + f0(0, 0) + f0(1, 0)) / 3)
    builder.output("OUT", temporal_average(blur, 3))
    return builder.build()


class TestFrameBufferConfig:
    def test_capacity_counts_retained_history_only(self):
        spec = asic_dual_port()
        config = FrameBufferConfig("B0", 64, 48, 2, spec)
        assert config.pixel_capacity == 2 * 64 * 48
        assert config.data_bits == config.pixel_capacity * spec.pixel_bits

    def test_rotation_slot_in_block_count(self):
        spec = asic_dual_port()
        config = FrameBufferConfig("B0", 64, 48, 2, spec)
        assert config.slots == 3
        frame_bits = 64 * 48 * spec.pixel_bits
        blocks_per_frame = -(-frame_bits // spec.block_bits)
        assert config.num_blocks == 3 * blocks_per_frame

    def test_payload_round_trip(self):
        config = FrameBufferConfig("B0", 64, 48, 2, asic_dual_port())
        assert FrameBufferConfig.from_payload(config.to_payload()) == config

    def test_payload_rejects_unknown_spec_fields(self):
        payload = FrameBufferConfig("B0", 64, 48, 1, asic_dual_port()).to_payload()
        payload["spec"]["bogus"] = 1
        with pytest.raises(ValueError, match="bogus"):
            FrameBufferConfig.from_payload(payload)


class TestAllocator:
    def test_allocate_validates_arguments(self):
        spec = asic_dual_port()
        with pytest.raises(AllocationError):
            allocate_frame_buffer("B0", 64, 48, 0, spec)
        with pytest.raises(AllocationError):
            allocate_frame_buffer("B0", 0, 48, 1, spec)

    def test_derive_matches_frame_depths(self):
        dag = build_temporal_pipeline()
        configs = derive_frame_buffers(dag, 64, 48, asic_dual_port())
        assert {c.producer: c.depth for c in configs} == dag.frame_depths()

    def test_spatial_dag_derives_nothing(self):
        assert derive_frame_buffers(build_chain(), 64, 48, asic_dual_port()) == []


class TestScheduleIntegration:
    def test_auto_derivation_and_totals(self):
        target = CompileTarget(
            dag=build_temporal_pipeline(),
            image_width=TEST_WIDTH,
            image_height=TEST_HEIGHT,
        )
        schedule = compile_target(target).schedule
        assert schedule.is_temporal
        assert set(schedule.frame_buffers) == {"B0"}
        assert schedule.frame_buffer_allocated_bits > 0
        # Frame-buffer blocks are part of the grand totals.
        line_blocks = sum(c.num_blocks for c in schedule.line_buffers.values())
        assert schedule.total_blocks == line_blocks + schedule.frame_buffer_blocks

    def test_spatial_schedule_has_no_frame_buffers(self):
        target = CompileTarget(
            dag=build_chain(), image_width=TEST_WIDTH, image_height=TEST_HEIGHT
        )
        schedule = compile_target(target).schedule
        assert schedule.frame_buffers == {}
        assert schedule.frame_buffer_allocated_bits == 0

    def test_describe_mentions_frame_buffers(self):
        target = CompileTarget(
            dag=build_temporal_pipeline(),
            image_width=TEST_WIDTH,
            image_height=TEST_HEIGHT,
        )
        schedule = compile_target(target).schedule
        assert "FB" in schedule.describe()


class TestEstimates:
    @pytest.fixture
    def temporal_schedule(self):
        target = CompileTarget(
            dag=build_temporal_pipeline(),
            image_width=TEST_WIDTH,
            image_height=TEST_HEIGHT,
        )
        return compile_target(target).schedule

    def test_area_includes_frame_memory(self, temporal_schedule):
        report = area_report(temporal_schedule)
        assert report.frame_memory_mm2 > 0
        without = sum(b.total_mm2 for b in report.buffers.values())
        assert report.memory_mm2 == pytest.approx(
            without + report.frame_memory_mm2
        )

    def test_power_includes_frame_memory(self, temporal_schedule):
        report = power_report(temporal_schedule)
        assert report.frame_memory_mw > 0
        assert report.memory_mw > sum(b.total_mw for b in report.buffers.values())

    def test_access_rate_is_one_write_plus_depth_reads(self, temporal_schedule):
        config = temporal_schedule.frame_buffers["B0"]
        assert frame_buffer_access_rates(config) == 1.0 + config.depth

    def test_row_gains_frame_keys_only_when_temporal(self, temporal_schedule):
        temporal_row = accelerator_report(temporal_schedule).row()
        assert temporal_row["frame_buffers"] == 1
        assert temporal_row["frame_sram_kb"] > 0

        spatial = compile_target(
            CompileTarget(
                dag=build_chain(), image_width=TEST_WIDTH, image_height=TEST_HEIGHT
            )
        ).schedule
        spatial_row = accelerator_report(spatial).row()
        assert "frame_sram_kb" not in spatial_row
        assert "frame_buffers" not in spatial_row
