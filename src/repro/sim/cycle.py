"""Cycle-level simulator for line-buffered pipeline schedules.

The simulator plays the role of the paper's "cycle-level simulator" (Sec. 7):
it walks the schedule cycle by cycle, tracks which physical line-buffer
blocks every stage touches, and

* verifies the three no-stall requirements of Sec. 5.1 —
  R1 (causality), R2 (no premature eviction), R3 (no port over-subscription);
* counts memory accesses per block, which the power model combines with
  per-access energies;
* measures the steady-state throughput (pixels per cycle) of the output
  stage.

Timing convention (element granularity)
---------------------------------------
A stage with start cycle ``S`` processes pixel ``n = t - S`` at cycle ``t``:
row ``n // W``, column ``n % W``.  A consumer reading an ``SH``-line window
reads one pixel from each of the ``SH`` lines ``row .. row + SH - 1`` of its
producer's buffer each cycle.  Reads from several consumers that target the
same (line, column) address are served by one physical access (broadcast),
which is what makes Darkroom's pattern-identical relay reads free.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.schedule import PipelineSchedule
from repro.errors import SimulationError


@dataclass
class BufferStats:
    """Access accounting for one producer's line buffer."""

    producer: str
    writes: int = 0
    reads: int = 0
    peak_block_accesses: int = 0
    accesses_per_block: dict[int, int] = field(default_factory=dict)

    @property
    def total_accesses(self) -> int:
        return self.writes + self.reads


@dataclass
class SimulationReport:
    """Outcome of a cycle-level simulation."""

    schedule: PipelineSchedule
    cycles_simulated: int
    rows_simulated: int
    output_pixels: int
    steady_state_throughput: float
    buffer_stats: dict[str, BufferStats]
    violations: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    @property
    def total_reads(self) -> int:
        return sum(stats.reads for stats in self.buffer_stats.values())

    @property
    def total_writes(self) -> int:
        return sum(stats.writes for stats in self.buffer_stats.values())


def simulate_schedule(
    schedule: PipelineSchedule,
    *,
    max_rows: int | None = None,
    extra_cycles: int | None = None,
    raise_on_violation: bool = False,
    max_violations: int = 16,
) -> SimulationReport:
    """Simulate ``schedule`` and return access statistics plus any violations.

    ``max_rows`` bounds the number of image rows processed (the default covers
    the pipeline's ramp-up plus a few steady-state rows, which exercises every
    relative access phase).  ``raise_on_violation`` raises
    :class:`SimulationError` on the first violation instead of collecting them.
    """
    width = schedule.image_width
    dag = schedule.dag
    starts = schedule.start_cycles
    max_start = max(starts.values())

    rows_needed = max_start // width + 1 + _max_stencil_height(schedule) + 3
    rows = min(schedule.image_height, rows_needed if max_rows is None else max(max_rows, 1))
    rows = min(rows, schedule.image_height)
    frame_pixels = width * rows

    end_cycle = max_start + frame_pixels
    if extra_cycles is not None:
        end_cycle = min(end_cycle, max_start + extra_cycles)

    buffer_stats = {name: BufferStats(producer=name) for name in schedule.line_buffers}
    violations: list[str] = []

    # Pre-compute, per buffer, its readers and their stencil heights.
    readers: dict[str, list[tuple[str, int]]] = {}
    for producer, config in schedule.line_buffers.items():
        readers[producer] = [
            (edge.consumer, edge.window.height) for edge in dag.out_edges(producer)
        ]

    output_stage = dag.output_stages()[0].name
    output_start = starts[output_stage]
    output_pixels = 0

    def record(message: str) -> None:
        if raise_on_violation:
            raise SimulationError(message)
        if len(violations) < max_violations:
            violations.append(message)

    for t in range(end_cycle):
        if t >= output_start and t - output_start < frame_pixels:
            output_pixels += 1
        for producer, config in schedule.line_buffers.items():
            if config.lines == 0:
                # Sub-line DFF buffers have no SRAM blocks and cannot stall.
                continue
            stats = buffer_stats[producer]
            lines = config.lines
            factor = max(1, config.coalesce_factor)
            writer_start = starts[producer]

            accesses: dict[int, set[tuple[int, int]]] = {}

            # Writer access.
            writer_line = None
            if writer_start <= t < writer_start + frame_pixels:
                n = t - writer_start
                writer_line = n // width
                writer_col = n % width
                stats.writes += 1
                if config.style != "fifo":
                    slot = writer_line % lines
                    block = slot // factor
                    accesses.setdefault(block, set()).add((writer_line, writer_col))
                    # R2: the slot being overwritten must no longer be needed.
                    old_line = writer_line - lines
                    if old_line >= 0:
                        for consumer, height in readers[producer]:
                            last_needed_cycle = starts[consumer] + old_line * width + writer_col
                            first_row_reading = old_line - height + 1
                            if first_row_reading >= rows:
                                continue
                            if last_needed_cycle >= t:
                                record(
                                    f"R2 violation at cycle {t}: {producer} overwrites line "
                                    f"{old_line} col {writer_col} still needed by {consumer}"
                                )

            # Reader accesses.
            if config.style == "fifo":
                # A FIFO chain pops and pushes every block every active cycle.
                if writer_start <= t < writer_start + frame_pixels:
                    stats.reads += config.num_blocks
                    stats.writes += max(0, config.num_blocks - 1)
                continue

            read_addresses: set[tuple[int, int]] = set()
            for consumer, height in readers[producer]:
                consumer_start = starts[consumer]
                if not (consumer_start <= t < consumer_start + frame_pixels):
                    continue
                n = t - consumer_start
                row = n // width
                col = n % width
                for k in range(height):
                    line = row + k
                    if line >= rows:
                        continue
                    # R1: the pixel must already have been produced.
                    produced_at = writer_start + line * width + col
                    if produced_at >= t:
                        record(
                            f"R1 violation at cycle {t}: {consumer} reads ({line},{col}) of "
                            f"{producer} which is produced at cycle {produced_at}"
                        )
                    read_addresses.add((line, col))

            stats.reads += len(read_addresses)
            for line, col in read_addresses:
                slot = line % lines
                block = slot // factor
                accesses.setdefault(block, set()).add((line, col))

            # R3: accesses per block per cycle must not exceed the port count.
            ports = config.spec.ports
            for block, addresses in accesses.items():
                count = len(addresses)
                stats.accesses_per_block[block] = stats.accesses_per_block.get(block, 0) + count
                if count > stats.peak_block_accesses:
                    stats.peak_block_accesses = count
                if count > ports:
                    record(
                        f"R3 violation at cycle {t}: block {block} of LB[{producer}] receives "
                        f"{count} accesses but has {ports} port(s)"
                    )

    steady_cycles = max(1, end_cycle - output_start)
    throughput = min(1.0, output_pixels / steady_cycles)
    return SimulationReport(
        schedule=schedule,
        cycles_simulated=end_cycle,
        rows_simulated=rows,
        output_pixels=output_pixels,
        steady_state_throughput=throughput,
        buffer_stats=buffer_stats,
        violations=violations,
    )


def _max_stencil_height(schedule: PipelineSchedule) -> int:
    heights = [edge.window.height for edge in schedule.dag.edges()]
    return max(heights) if heights else 1
