#!/usr/bin/env python3
"""Lint a Prometheus text exposition (format 0.0.4).

:func:`validate_exposition` checks what a scraper would choke on: samples
must parse, every sample family must be declared with ``# TYPE`` before its
first sample, counter names must end in ``_total`` (``_sum``/``_count``/
``_bucket`` reserved for histograms), and every histogram needs a
``le="+Inf"`` bucket equal to its ``_count``.

CLI usage::

    PYTHONPATH=src python tools/check_prometheus.py exposition.txt
    ... | PYTHONPATH=src python tools/check_prometheus.py -
    PYTHONPATH=src python tools/check_prometheus.py --from-local-server

``--from-local-server`` boots an in-process compile service on an ephemeral
port, compiles one pipeline, fetches ``GET /v1/metrics?format=prometheus``
and lints it — additionally requiring the per-stage histogram series CI pins
(solve/allocate/rtl/cache).  This is the CI exposition check.
"""

from __future__ import annotations

import argparse
import re
import sys
from collections import defaultdict
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

_SAMPLE_RE = re.compile(r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{(.*)\})?\s+(\S+)(\s+\S+)?$")
_LABEL_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')
_HISTOGRAM_SUFFIXES = ("_bucket", "_sum", "_count")

#: Stage histogram series the service must always expose (pre-seeded even at
#: zero traffic); required by ``--from-local-server``.
REQUIRED_STAGES = ("solve", "allocate", "rtl", "cache")


def _family(name: str, types: dict) -> str:
    """Map a sample name to its declared family (histogram suffix aware)."""
    for suffix in _HISTOGRAM_SUFFIXES:
        base = name[: -len(suffix)] if name.endswith(suffix) else None
        if base and types.get(base) in ("histogram", "summary"):
            return base
    return name


def validate_exposition(text: str) -> list[str]:
    """All format problems in ``text``; an empty list means it scrapes clean."""
    problems: list[str] = []
    types: dict[str, str] = {}
    buckets: dict[tuple[str, tuple], dict[str, float]] = defaultdict(dict)
    counts: dict[tuple[str, tuple], float] = {}
    for lineno, line in enumerate(text.splitlines(), 1):
        if not line.strip():
            continue
        if line.startswith("# TYPE "):
            parts = line.split()
            if len(parts) != 4 or parts[3] not in ("counter", "gauge", "histogram", "summary", "untyped"):
                problems.append(f"line {lineno}: malformed TYPE comment: {line!r}")
            elif parts[2] in types:
                problems.append(f"line {lineno}: duplicate TYPE for {parts[2]}")
            else:
                types[parts[2]] = parts[3]
            continue
        if line.startswith("#"):
            continue
        match = _SAMPLE_RE.match(line)
        if match is None:
            problems.append(f"line {lineno}: unparsable sample: {line!r}")
            continue
        name, _, raw_labels, value = match.group(1), match.group(2), match.group(3), match.group(4)
        labels = dict(_LABEL_RE.findall(raw_labels)) if raw_labels else {}
        try:
            number = float(value)
        except ValueError:
            problems.append(f"line {lineno}: non-numeric value {value!r} for {name}")
            continue
        family = _family(name, types)
        kind = types.get(family)
        if kind is None:
            problems.append(f"line {lineno}: sample {name} has no preceding # TYPE")
            continue
        if kind == "counter" and not name.endswith("_total"):
            problems.append(f"line {lineno}: counter {name} must end in _total")
        if kind == "histogram" and name.endswith("_bucket"):
            key = (family, tuple(sorted((k, v) for k, v in labels.items() if k != "le")))
            buckets[key][labels.get("le", "")] = number
        if kind == "histogram" and name.endswith("_count"):
            key = (family, tuple(sorted(labels.items())))
            counts[key] = number
    for (family, labels), series in buckets.items():
        where = f"{family}{{{dict(labels)}}}" if labels else family
        if "+Inf" not in series:
            problems.append(f"{where}: histogram has no le=\"+Inf\" bucket")
        elif (family, labels) in counts and series["+Inf"] != counts[(family, labels)]:
            problems.append(
                f"{where}: le=\"+Inf\" bucket ({series['+Inf']:g}) != _count "
                f"({counts[(family, labels)]:g})"
            )
    return problems


def _scrape_local_server() -> str:
    """Boot a service inline, compile one target, return its exposition."""
    from repro.algorithms import build_algorithm
    from repro.api.target import CompileTarget
    from repro.service import CompileEngine, ServiceClient, start_server

    engine = CompileEngine(workers=1, executor="inline", tracing=True)
    server = start_server(engine)
    try:
        client = ServiceClient(port=server.port)
        target = CompileTarget(
            build_algorithm("unsharp-m"), image_width=64, image_height=48
        )
        client.compile(target)
        client.compile(target)  # the repeat exercises the cache span
        return client.metrics_prometheus()
    finally:
        server.stop()
        engine.shutdown()


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "source",
        nargs="?",
        help="exposition file to lint, or '-' for stdin",
    )
    parser.add_argument(
        "--from-local-server",
        action="store_true",
        help="boot an in-process service, scrape it, and lint the response "
        "(also requires the per-stage histogram series)",
    )
    args = parser.parse_args(argv)
    if args.from_local_server == (args.source is not None):
        parser.error("give an exposition file, '-', or --from-local-server")
    if args.from_local_server:
        text = _scrape_local_server()
    elif args.source == "-":
        text = sys.stdin.read()
    else:
        text = Path(args.source).read_text(encoding="utf-8")
    problems = validate_exposition(text)
    if args.from_local_server:
        for stage in REQUIRED_STAGES:
            if f'repro_stage_seconds_count{{stage="{stage}"}}' not in text:
                problems.append(f"exposition is missing the {stage!r} stage histogram")
    for problem in problems:
        print(f"FAIL {problem}")
    samples = sum(
        1
        for line in text.splitlines()
        if line.strip() and not line.startswith("#")
    )
    print(
        f"linted {samples} samples -> "
        f"{'OK' if not problems else f'{len(problems)} problem(s)'}"
    )
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main())
