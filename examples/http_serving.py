#!/usr/bin/env python3
"""Serve compile requests over HTTP: the engine as an actual network service.

Boots the stdlib HTTP front (`repro.service.http`) on an ephemeral port,
then drives it with the `ServiceClient` helper the way a remote designer
would: compile a catalog pipeline, compile it again (answered from the
content-addressed cache without touching a solver), submit a batch with one
infeasible design point (a per-item error, not a failed batch), and read the
operational endpoints.

The same checks double as the CI smoke for the serving front, so every
assertion here is a service-level guarantee.  For a standalone server, run
``python -m repro.service.http --port 8080 --cache-dir .imagen-cache``.

Run:  python examples/http_serving.py
"""

from __future__ import annotations

import tempfile

from repro import CompileEngine, CompileTarget
from repro.algorithms import build_algorithm
from repro.service import ServiceClient, start_server


def main() -> None:
    with tempfile.TemporaryDirectory(prefix="imagen-http-") as cache_dir:
        engine = CompileEngine(workers=2, cache_dir=cache_dir)
        server = start_server(engine)  # port=0: ephemeral
        client = ServiceClient(port=server.port)
        try:
            print(f"service on http://127.0.0.1:{server.port}  {client.health()}")

            target = CompileTarget(
                build_algorithm("unsharp-m"), image_width=480, image_height=320
            )
            first = client.compile(target)
            second = client.compile(target)
            for tag, result in (("cold", first), ("warm", second)):
                print(
                    f"  {tag}: source={result['source']:<7} "
                    f"{result['seconds'] * 1000:7.1f} ms  "
                    f"area={result['report']['total_area_mm2']} mm2  "
                    f"power={result['report']['total_power_mw']} mW"
                )

            # The service answers with the exact design the library computes
            # in-process: same fingerprint, same area/power summary.
            in_process = engine.submit(target)
            assert first["fingerprint"] == in_process.fingerprint
            assert first["ok"] and second["ok"]
            # ...and the repeat never re-ran a generator.
            assert first["source"] == "solver"
            assert second["source"] in ("memory", "disk"), second["source"]

            # One bad design point degrades to an error entry in its slot.
            batch = client.compile_batch(
                [target, target.with_resolution(1, 1), target.with_generator("soda")]
            )
            assert [r["ok"] for r in batch["results"]] == [True, False, True]
            print(f"  batch: {[r.get('source', 'error') for r in batch['results']]}")

            metrics = client.metrics()
            stats = client.cache_stats()
            assert metrics["served_from_cache"] >= 1
            assert stats["hits"] >= 1 and stats["disk_entries"] >= 1
            print(f"  metrics: {metrics}")
            print(f"  cache:   {stats}")

            # The observability surface: per-request span trees and the
            # Prometheus rendering of the same counters printed above.
            traced = client.compile(target, trace=True)
            span_names = [span["name"] for span in traced["spans"]]
            assert "cache" in span_names, span_names
            exposition = client.metrics_prometheus()
            assert "# TYPE repro_stage_seconds histogram" in exposition
            assert 'repro_stage_seconds_count{stage="solve"}' in exposition
            print(f"  trace:   {span_names}")
            print(f"  prometheus: {len(exposition.splitlines())} lines")
            print("http smoke ok")
        finally:
            server.stop()
            engine.shutdown()


if __name__ == "__main__":
    main()
