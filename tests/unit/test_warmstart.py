"""Warm-start transfer, certificates, neighbor cache, and byte-identity pins.

The acceptance property of the warm-start layer is *identity*: a warm-started
(or compound) solve must produce a byte-identical schedule to the cold solve
it replaces — the warm machinery may only change how fast the answer is
found, never the answer.  These tests pin that for every catalog algorithm
and for every generator family, plus the unit behaviour of the transfer, the
lower bounds, the cache's neighbor lookup and the compiler wiring.
"""

from __future__ import annotations

import json

import pytest

from repro.algorithms.catalog import ALGORITHM_NAMES, build_algorithm
from repro.api.target import CompileTarget
from repro.baselines.base import BASELINE_NAMES
from repro.core.compiler import compile_target
from repro.core.scheduler import SchedulerOptions, schedule_compound, schedule_pipeline
from repro.core.warmstart import (
    WarmHint,
    dependency_lower_bound,
    difference_system,
    disjunctive_lower_bound,
    hint_from_schedule,
    schedule_objective,
    try_warm_transfer,
)
from repro.memory.spec import asic_dual_port
from repro.service.cache import CompileCache, serialize_schedule

NEIGHBOR_RES = (480, 320)
TARGET_RES = (960, 540)


def schedule_payload(schedule) -> str:
    """Canonical byte form of a schedule, solver bookkeeping stripped."""
    payload = serialize_schedule(schedule, include_line_buffers=True)
    payload.pop("solver_stats", None)
    return json.dumps(payload, sort_keys=True)


@pytest.fixture(scope="module")
def spec():
    return asic_dual_port()


class TestTransfer:
    def test_hint_from_schedule_carries_decisions(self, spec):
        schedule = schedule_pipeline(
            build_algorithm("canny-s"), *NEIGHBOR_RES, spec, SchedulerOptions()
        )
        hint = hint_from_schedule(schedule)
        assert hint.image_width == NEIGHBOR_RES[0]
        assert hint.start_cycles == dict(schedule.start_cycles)
        assert hint.objective == pytest.approx(schedule.solver_stats["objective"])

    def test_stale_hint_is_reported(self, spec):
        dag = build_algorithm("canny-s")
        from repro.core.scheduler import _constraint_prologue

        prologue = _constraint_prologue(dag, TARGET_RES[0], spec, SchedulerOptions())
        mandatory, multis = difference_system(prologue.dependencies, prologue.disjunctions)
        cycles, detail = try_warm_transfer(
            dag,
            WarmHint(),  # no start cycles at all
            image_width=TARGET_RES[0],
            mandatory=mandatory,
            multis=multis,
            pruning=True,
            order=prologue.order,
        )
        assert cycles is None and detail == "stale-hint"

    def test_transfer_produces_legal_certified_schedule(self, spec):
        dag = build_algorithm("canny-s")
        options = SchedulerOptions()
        hint = hint_from_schedule(schedule_pipeline(dag, *NEIGHBOR_RES, spec, options))
        from repro.core.scheduler import _attempt_warm_start, _constraint_prologue

        prologue = _constraint_prologue(dag, TARGET_RES[0], spec, options)
        cycles, certified, detail = _attempt_warm_start(
            dag, TARGET_RES[0], prologue, options, hint
        )
        assert detail == "certificate"
        assert cycles is not None
        assert certified == schedule_objective(dag, cycles)

    @pytest.mark.parametrize("name", ALGORITHM_NAMES)
    def test_disjunctive_bound_tightens_but_stays_valid(self, name, spec):
        dag = build_algorithm(name)
        from repro.core.scheduler import _constraint_prologue

        prologue = _constraint_prologue(dag, NEIGHBOR_RES[0], spec, SchedulerOptions())
        mandatory, multis = difference_system(prologue.dependencies, prologue.disjunctions)
        weak = dependency_lower_bound(dag, mandatory)
        strong = disjunctive_lower_bound(dag, mandatory, multis)
        assert strong >= weak
        # Validity: a solved optimum can never undercut the bound.
        schedule = schedule_pipeline(dag, *NEIGHBOR_RES, spec, SchedulerOptions())
        assert schedule_objective(dag, dict(schedule.start_cycles)) >= strong


class TestWarmIdentity:
    @pytest.mark.parametrize("name", ALGORITHM_NAMES)
    def test_warm_solve_is_byte_identical_to_cold(self, name, spec):
        dag = build_algorithm(name)
        options = SchedulerOptions()
        hint = hint_from_schedule(schedule_pipeline(dag, *NEIGHBOR_RES, spec, options))
        cold = schedule_pipeline(dag, *TARGET_RES, spec, options)
        warm = schedule_pipeline(dag, *TARGET_RES, spec, options, warm_hint=hint)
        assert schedule_payload(warm) == schedule_payload(cold)
        # At the default options every catalog algorithm's transfer certifies.
        assert warm.solver_stats["warm_start"] == "certificate"

    @pytest.mark.parametrize("name", ("canny-s", "harris-m"))
    def test_warm_solve_matches_cold_without_coalescing(self, name, spec):
        dag = build_algorithm(name)
        options = SchedulerOptions(coalescing=False)
        hint = hint_from_schedule(schedule_pipeline(dag, *NEIGHBOR_RES, spec, options))
        cold = schedule_pipeline(dag, *TARGET_RES, spec, options)
        warm = schedule_pipeline(dag, *TARGET_RES, spec, options, warm_hint=hint)
        assert schedule_payload(warm) == schedule_payload(cold)


class TestGeneratorIdentity:
    """All four generators produce identical designs with or without the
    warm-start-capable cache in the loop."""

    @pytest.mark.parametrize("generator", ("imagen",) + BASELINE_NAMES)
    @pytest.mark.parametrize("name", ("canny-s", "denoise-m"))
    def test_cached_compile_matches_plain_compile(self, name, generator, spec):
        dag = build_algorithm(name)
        cache = CompileCache(max_entries=64)
        # Warm the cache with the *neighbor* resolution so the target compile
        # below sees a fetch_neighbor hit (imagen) or ignores it (baselines).
        neighbor = CompileTarget(
            dag=dag, image_width=NEIGHBOR_RES[0], image_height=NEIGHBOR_RES[1],
            memory_spec=spec, generator=generator,
        )
        compile_target(neighbor, cache=cache)
        target = CompileTarget(
            dag=dag, image_width=TARGET_RES[0], image_height=TARGET_RES[1],
            memory_spec=spec, generator=generator,
        )
        plain = compile_target(target)
        cached = compile_target(target, cache=cache)
        assert schedule_payload(cached.schedule) == schedule_payload(plain.schedule)


class TestCompoundIdentity:
    @pytest.mark.parametrize("name", ALGORITHM_NAMES)
    def test_compound_sweep_matches_solo_solves(self, name, spec):
        import itertools

        from repro.dse.sweep import _design_target

        dag = build_algorithm(name)
        base = CompileTarget(
            dag=dag, image_width=NEIGHBOR_RES[0], image_height=NEIGHBOR_RES[1],
            memory_spec=spec,
        )
        baseline = schedule_pipeline(
            dag, *NEIGHBOR_RES, spec, SchedulerOptions(coalescing=False)
        )
        configurable = [
            producer for producer, config in baseline.line_buffers.items()
            if config.lines >= 2
        ]
        variant_options = [
            _design_target(base, dict(zip(configurable, combo))).options
            for combo in itertools.product(("DP", "DPLC"), repeat=len(configurable))
        ]
        solo = [schedule_pipeline(dag, *NEIGHBOR_RES, spec, o) for o in variant_options]
        compound = schedule_compound(
            dag, *NEIGHBOR_RES, spec, variant_options,
            base_hint=hint_from_schedule(baseline),
        )
        assert len(compound) == len(solo)
        for cold, warm in zip(solo, compound):
            assert schedule_payload(warm) == schedule_payload(cold)
            assert warm.solver_stats["compound_variants"] == len(variant_options)


class TestCacheNeighbor:
    def _put(self, cache, dag, width, height, spec, **options):
        target = CompileTarget(
            dag=dag, image_width=width, image_height=height, memory_spec=spec,
            options=SchedulerOptions(**options),
        )
        schedule = schedule_pipeline(dag, width, height, spec, target.options)
        cache.put(target.fingerprint, schedule)
        return target

    def test_neighbor_found_across_resolutions(self, spec):
        dag = build_algorithm("unsharp-m")
        cache = CompileCache()
        self._put(cache, dag, *NEIGHBOR_RES, spec)
        target = CompileTarget(
            dag=dag, image_width=TARGET_RES[0], image_height=TARGET_RES[1],
            memory_spec=spec,
        )
        hint = cache.fetch_neighbor(target)
        assert hint is not None
        assert hint.image_width == NEIGHBOR_RES[0]
        assert hint.fingerprint
        assert cache.stats.neighbor_hits == 1

    def test_same_width_neighbor_preferred(self, spec):
        dag = build_algorithm("unsharp-m")
        cache = CompileCache()
        self._put(cache, dag, *NEIGHBOR_RES, spec)
        self._put(cache, dag, TARGET_RES[0], TARGET_RES[1], spec, coalescing=True)
        target = CompileTarget(
            dag=dag, image_width=TARGET_RES[0], image_height=TARGET_RES[1],
            memory_spec=spec,
        )
        hint = cache.fetch_neighbor(target)
        assert hint is not None
        assert hint.image_width == TARGET_RES[0]  # options-only neighbor wins

    def test_exact_entry_is_not_its_own_neighbor(self, spec):
        dag = build_algorithm("unsharp-m")
        cache = CompileCache()
        target = self._put(cache, dag, *NEIGHBOR_RES, spec)
        assert cache.fetch_neighbor(target) is None
        assert cache.stats.neighbor_misses == 1

    def test_different_dag_is_no_neighbor(self, spec):
        cache = CompileCache()
        self._put(cache, build_algorithm("canny-s"), *NEIGHBOR_RES, spec)
        target = CompileTarget(
            dag=build_algorithm("harris-s"), image_width=TARGET_RES[0],
            image_height=TARGET_RES[1], memory_spec=spec,
        )
        assert cache.fetch_neighbor(target) is None

    def test_eviction_drops_index_entries(self, spec):
        dag = build_algorithm("unsharp-m")
        cache = CompileCache(max_entries=1)
        self._put(cache, dag, *NEIGHBOR_RES, spec)
        # Inserting a different pipeline evicts the first entry...
        self._put(cache, build_algorithm("canny-s"), *NEIGHBOR_RES, spec)
        target = CompileTarget(
            dag=dag, image_width=TARGET_RES[0], image_height=TARGET_RES[1],
            memory_spec=spec,
        )
        # ...so the evicted schedule is no longer offered as a neighbor.
        assert cache.fetch_neighbor(target) is None

    def test_clear_resets_index(self, spec):
        dag = build_algorithm("unsharp-m")
        cache = CompileCache()
        self._put(cache, dag, *NEIGHBOR_RES, spec)
        cache.clear()
        target = CompileTarget(
            dag=dag, image_width=TARGET_RES[0], image_height=TARGET_RES[1],
            memory_spec=spec,
        )
        assert cache.fetch_neighbor(target) is None
        assert cache.stats.neighbor_misses == 1

    def test_counters_exported(self):
        from repro.service.cache import CacheStats

        stats = CacheStats(neighbor_hits=3, neighbor_misses=1).as_dict()
        assert stats["neighbor_hits"] == 3
        assert stats["neighbor_misses"] == 1


class TestCompilerWiring:
    def test_cache_miss_warm_starts_from_neighbor(self, spec):
        dag = build_algorithm("canny-s")
        cache = CompileCache()
        first = CompileTarget(
            dag=dag, image_width=NEIGHBOR_RES[0], image_height=NEIGHBOR_RES[1],
            memory_spec=spec,
        )
        compile_target(first, cache=cache)
        second = CompileTarget(
            dag=dag, image_width=TARGET_RES[0], image_height=TARGET_RES[1],
            memory_spec=spec,
        )
        compiled = compile_target(second, cache=cache)
        assert compiled.schedule.solver_stats["warm_start"] == "certificate"
        assert cache.stats.neighbor_hits >= 1


class TestIlpMetrics:
    def test_observe_spans_aggregates_solver_counters(self):
        from repro.service.metrics import EngineMetrics
        from repro.trace import Span

        metrics = EngineMetrics()
        spans = [
            Span.from_payload({
                "name": "ilp", "start": 0.0, "seconds": 0.001,
                "attrs": {"warm_start": "certificate", "bnb_pruned": 0},
            }),
            Span.from_payload({
                "name": "ilp", "start": 0.0, "seconds": 0.01,
                "attrs": {"warm_start": "incumbent", "bnb_pruned": 4,
                          "race_winner": "python"},
            }),
            Span.from_payload({
                "name": "ilp_compound", "start": 0.0, "seconds": 0.1,
                "attrs": {"blocks": 8, "block_solves": 8},
            }),
        ]
        metrics.observe_spans(spans)
        summary = metrics.summary()
        assert summary["ilp_solves"] == 2
        assert summary["ilp_warm_certificates"] == 1
        assert summary["ilp_warm_seeded"] == 1
        assert summary["ilp_races"] == 1
        assert summary["ilp_race_wins_python"] == 1
        assert summary["ilp_race_wins_highs"] == 0
        assert summary["ilp_pruned_nodes"] == 4
        assert summary["ilp_compound_solves"] == 1
        assert summary["ilp_compound_blocks"] == 8

    def test_summary_keys_are_registered_metrics(self):
        from repro.service.metrics import EngineMetrics
        from repro.service.observability import registered_keys

        summary = EngineMetrics().summary()
        registered = registered_keys("/v1/metrics")
        for key in summary:
            if key.startswith("ilp_"):
                assert key in registered
