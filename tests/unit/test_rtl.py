"""Unit tests for Verilog expression translation, generation and linting."""

import pytest

from repro.core.compiler import compile_pipeline
from repro.dsl import ast
from repro.errors import RTLError
from repro.rtl.expressions import (
    DATA_WIDTH,
    constant_literal,
    sanitize,
    translate,
    window_wire,
)
from repro.rtl.generator import generate_design
from repro.rtl.lint import lint_verilog

from tests.conftest import TEST_HEIGHT, TEST_WIDTH, build_chain, build_paper_example

W, H = TEST_WIDTH, TEST_HEIGHT


class TestExpressionTranslation:
    def test_constants_are_fixed_point(self):
        assert constant_literal(1.0) == f"{DATA_WIDTH}'sd256"
        assert constant_literal(-0.5) == f"-{DATA_WIDTH}'sd128"

    def test_stage_reference_names(self):
        assert window_wire("K0", -1, 2) == "win_K0_m1_p2"
        assert "win_K0_p0_p0" in translate(ast.StageRef("K0", 0, 0))

    def test_sanitize(self):
        assert sanitize("a-b c") == "a_b_c"
        assert sanitize("1stage").startswith("s_")

    def test_multiplication_renormalises(self):
        text = translate(ast.StageRef("A") * 2.0)
        assert ">>> 8" in text

    def test_division_prescales(self):
        text = translate(ast.StageRef("A") / ast.StageRef("B"))
        assert "<<< 8" in text

    def test_comparison_produces_fixed_point_bool(self):
        text = translate(ast.StageRef("A") > 3.0)
        assert "?" in text and "'sd256" in text

    def test_intrinsics(self):
        assert "?" in translate(ast.Call("max", (ast.StageRef("A"), ast.Const(1.0))))
        assert "isqrt" in translate(ast.Call("sqrt", (ast.StageRef("A"),)))
        clamp = translate(ast.Call("clamp", (ast.StageRef("A"), ast.Const(0.0), ast.Const(1.0))))
        assert clamp.count("?") == 2

    def test_abs_and_negation(self):
        assert "-" in translate(-ast.StageRef("A"))
        assert "< 0" in translate(ast.Call("abs", (ast.StageRef("A"),)))


class TestGeneratedDesign:
    @pytest.fixture(scope="class")
    def design(self):
        accelerator = compile_pipeline(build_paper_example(), image_width=W, image_height=H)
        return generate_design(accelerator.schedule)

    def test_module_inventory(self, design):
        assert design.top_module == "accelerator_paper_example"
        assert "imagen_sram" in design.module_names
        assert any(name.startswith("linebuffer_") for name in design.module_names)
        assert any(name.startswith("stage_") for name in design.module_names)
        assert any(name.startswith("window_") for name in design.module_names)

    def test_every_stage_has_a_module(self, design):
        for stage in ("K1", "K2"):
            assert f"stage_{stage}" in design.module_names

    def test_schedule_constants_embedded(self, design):
        accelerator = compile_pipeline(build_paper_example(), image_width=W, image_height=H)
        for start in accelerator.schedule.start_cycles.values():
            assert f"32'd{start}" in design.source

    def test_line_count_is_substantial(self, design):
        assert design.line_count > 200

    def test_lint_passes(self, design):
        report = lint_verilog(design.source)
        assert report.ok, report.errors

    def test_chain_design_lints(self):
        accelerator = compile_pipeline(build_chain(4), image_width=W, image_height=H)
        report = lint_verilog(accelerator.generate_verilog())
        assert report.ok, report.errors


class TestLinter:
    def test_detects_undefined_module(self):
        source = """
module top (input wire clk);
    missing_module u_inst (.clk(clk));
endmodule
"""
        report = lint_verilog(source)
        assert not report.ok
        assert any("undefined module" in e for e in report.errors)

    def test_detects_unbalanced_endmodule(self):
        source = "module a (input wire clk);\nmodule b (input wire clk);\nendmodule\n"
        report = lint_verilog(source)
        assert not report.ok

    def test_detects_duplicate_modules(self):
        source = "module a ();\nendmodule\nmodule a ();\nendmodule\n"
        report = lint_verilog(source)
        assert any("Duplicate" in e for e in report.errors)

    def test_detects_unknown_port(self):
        source = """
module leaf (input wire clk);
endmodule
module top (input wire clk);
    leaf u_leaf (.clk(clk), .nonexistent(clk));
endmodule
"""
        report = lint_verilog(source)
        assert any("unknown port" in e for e in report.errors)

    def test_reports_top_modules(self):
        source = """
module leaf (input wire clk);
endmodule
module top (input wire clk);
    leaf u_leaf (.clk(clk));
endmodule
"""
        report = lint_verilog(source)
        assert report.ok
        assert report.top_modules == ["top"]

    def test_multi_identifier_port_declarations(self):
        """`input wire a, b` declares both ports — neither connection errors."""
        source = """
module leaf (input wire clk, rst, input wire [7:0] a, b, output reg [7:0] q);
endmodule
module top (input wire clk, output wire [7:0] q);
    wire rst;
    wire [7:0] x, y;
    leaf u_leaf (.clk(clk), .rst(rst), .a(x), .b(y), .q(q));
endmodule
"""
        report = lint_verilog(source)
        assert report.ok, report.errors

    def test_multi_identifier_list_stops_at_next_direction(self):
        """`input wire a, output wire b` must not fold b into the input list."""
        source = """
module leaf (input wire a, output wire b);
endmodule
module top (input wire a, output wire b);
    leaf u_leaf (.a(a), .b(b));
endmodule
"""
        report = lint_verilog(source)
        assert report.ok, report.errors

    def test_detects_width_mismatch_on_connection(self):
        source = """
module leaf (input wire clk, input wire [7:0] a);
endmodule
module top (input wire clk);
    wire [3:0] narrow;
    leaf u_leaf (.clk(clk), .a(narrow));
endmodule
"""
        report = lint_verilog(source)
        assert any(
            "narrow (4 bits)" in e and ".a" in e and "(8 bits)" in e
            for e in report.errors
        ), report.errors

    def test_width_check_skips_expressions_and_symbolic_ranges(self):
        """Only bare identifiers with constant ranges on both ends compare."""
        source = """
module leaf (input wire [7:0] a, input wire [WIDTH-1:0] b);
endmodule
module top (input wire clk);
    wire [7:0] x;
    wire [3:0] y;
    leaf u_leaf (.a(x[7:0] % 3), .b(y));
endmodule
"""
        report = lint_verilog(source)
        assert report.ok, report.errors
