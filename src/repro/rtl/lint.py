"""Structural linter for the generated Verilog.

Without a synthesis tool in the environment, the linter provides a safety net
for the code generator: it tokenises the source just enough to check that

* module names are unique and every instantiated module is defined,
* ``module``/``endmodule`` and ``begin``/``end`` pairs balance,
* every named port connection of an instance exists on the target module,
* identifiers used in instance connections are declared somewhere in the
  instantiating module (wire/reg/port),
* when both the target port and a plainly-connected identifier have numeric
  literal ranges, the two widths agree,
* there is exactly one top-level module that nobody instantiates.

Port declarations may list several identifiers (``input wire a, b``); every
name in the list is registered.  Width checks are deliberately conservative:
only connections whose expression is a bare identifier are compared, and only
when both ends resolve to a constant ``[msb:lsb]`` range (or no range, which
is one bit) — parameterised ranges and arithmetic expressions are skipped.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

_MODULE_RE = re.compile(r"^\s*module\s+([A-Za-z_][A-Za-z0-9_$]*)", re.MULTILINE)
_INSTANCE_RE = re.compile(
    r"^\s*([A-Za-z_][A-Za-z0-9_$]*)\s+(?:#\s*\([^;]*?\)\s*)?(u_[A-Za-z0-9_$]*)\s*\(",
    re.MULTILINE,
)
_PORT_DECL_RE = re.compile(
    r"\b(?:input|output|inout)\b\s+(?:(?:wire|reg)\s+)?(?:signed\s+)?(\[[^\]]*\])?\s*"
    r"([A-Za-z_][A-Za-z0-9_$]*(?:\s*,\s*(?!(?:input|output|inout|wire|reg)\b)"
    r"[A-Za-z_][A-Za-z0-9_$]*)*)"
)
_SIGNAL_DECL_RE = re.compile(
    r"\b(?:wire|reg)\b\s*(?:signed\s+)?(\[[^\]]*\])?\s*"
    r"([A-Za-z_][A-Za-z0-9_$]*(?:\s*,\s*(?!(?:input|output|inout|wire|reg)\b)"
    r"[A-Za-z_][A-Za-z0-9_$]*)*)"
)
_PORT_CONNECT_RE = re.compile(r"\.([A-Za-z_][A-Za-z0-9_$]*)\s*\(")
_PORT_CONNECT_EXPR_RE = re.compile(r"\.([A-Za-z_][A-Za-z0-9_$]*)\s*\(\s*([^()]*?)\s*\)")
_RANGE_RE = re.compile(r"\[\s*(\d+)\s*:\s*(\d+)\s*\]")
_IDENT_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_$]*")

_KEYWORDS_WITH_BEGIN = ("begin",)


@dataclass
class LintReport:
    """Result of linting one Verilog source."""

    modules: list[str] = field(default_factory=list)
    instances: list[tuple[str, str]] = field(default_factory=list)
    errors: list[str] = field(default_factory=list)
    warnings: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.errors

    @property
    def top_modules(self) -> list[str]:
        instantiated = {module for module, _ in self.instances}
        return [m for m in self.modules if m not in instantiated]


def _module_bodies(source: str) -> dict[str, str]:
    bodies: dict[str, str] = {}
    for match in _MODULE_RE.finditer(source):
        name = match.group(1)
        end = source.find("endmodule", match.end())
        bodies[name] = source[match.start() : end if end != -1 else len(source)]
    return bodies


def _range_width(range_text: str | None) -> int | None:
    """Bit width of a ``[msb:lsb]`` range; 1 when absent; None when symbolic."""
    if not range_text:
        return 1
    match = _RANGE_RE.fullmatch(range_text.strip())
    if match is None:
        return None
    return abs(int(match.group(1)) - int(match.group(2))) + 1


def _port_names(body: str) -> set[str]:
    names: set[str] = set()
    for match in _PORT_DECL_RE.finditer(body):
        names.update(name.strip() for name in match.group(2).split(","))
    return names


def _declared_widths(body: str) -> dict[str, int | None]:
    """Width of every wire/reg/port in a module body (None = not constant)."""
    widths: dict[str, int | None] = {}
    for regex in (_SIGNAL_DECL_RE, _PORT_DECL_RE):
        for match in regex.finditer(body):
            width = _range_width(match.group(1))
            for name in match.group(2).split(","):
                widths[name.strip()] = width
    return widths


def lint_verilog(source: str) -> LintReport:
    """Run the structural checks and return a :class:`LintReport`."""
    report = LintReport()
    bodies = _module_bodies(source)
    report.modules = list(bodies)

    seen: set[str] = set()
    for name in _MODULE_RE.findall(source):
        if name in seen:
            report.errors.append(f"Duplicate module definition: {name}")
        seen.add(name)

    module_count = len(_MODULE_RE.findall(source))
    endmodule_count = len(re.findall(r"\bendmodule\b", source))
    if module_count != endmodule_count:
        report.errors.append(
            f"Unbalanced module/endmodule: {module_count} module(s), {endmodule_count} endmodule(s)"
        )

    begin_count = len(re.findall(r"\bbegin\b", source))
    end_count = len(re.findall(r"\bend\b(?!module|generate|function|case)", source))
    if begin_count != end_count:
        report.errors.append(f"Unbalanced begin/end: {begin_count} begin(s), {end_count} end(s)")

    port_map = {name: _port_names(body) for name, body in bodies.items()}
    width_map = {name: _declared_widths(body) for name, body in bodies.items()}

    for module_name, body in bodies.items():
        for match in _INSTANCE_RE.finditer(body):
            target, instance = match.group(1), match.group(2)
            if target in ("module",):
                continue
            report.instances.append((target, instance))
            if target not in bodies:
                report.errors.append(
                    f"Module {module_name!r} instantiates undefined module {target!r} as {instance}"
                )
                continue
            # Check the named connections of this instance against the target's ports.
            instance_text = _instance_text(body, match.start())
            for port in _PORT_CONNECT_RE.findall(instance_text):
                if port not in port_map[target]:
                    report.errors.append(
                        f"Instance {instance} connects unknown port .{port} of module {target}"
                    )
            # Width agreement where both ends have constant ranges and the
            # connection is a bare identifier (expressions are skipped).
            for port, expr in _PORT_CONNECT_EXPR_RE.findall(instance_text):
                if _IDENT_RE.fullmatch(expr) is None:
                    continue
                port_width = width_map[target].get(port)
                signal_width = width_map[module_name].get(expr)
                if port_width is None or signal_width is None:
                    continue
                if port_width != signal_width:
                    report.errors.append(
                        f"Instance {instance} connects {expr} ({signal_width} bits) "
                        f"to port .{port} of module {target} ({port_width} bits)"
                    )

    tops = [m for m in report.modules if m not in {t for t, _ in report.instances}]
    if not tops:
        report.errors.append("No top-level module (every module is instantiated)")
    elif len(tops) > 1:
        report.warnings.append(f"Multiple top-level candidates: {', '.join(tops)}")

    return report


def _instance_text(body: str, start: int) -> str:
    """The text of one instantiation, from its start to the closing ');'."""
    end = body.find(");", start)
    return body[start : end if end != -1 else len(body)]
