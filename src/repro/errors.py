"""Exception hierarchy shared by every subsystem of the ImaGen reproduction.

Keeping all exceptions in a single module lets callers catch broad classes
(``ReproError``) or precise failures (``InfeasibleError``) without importing
deep into implementation packages.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this library."""


class DSLError(ReproError):
    """Base class for front-end (DSL) errors."""


class DSLSyntaxError(DSLError):
    """The textual DSL could not be tokenized or parsed."""

    def __init__(self, message: str, line: int | None = None, column: int | None = None):
        location = ""
        if line is not None:
            location = f" (line {line}" + (f", column {column}" if column is not None else "") + ")"
        super().__init__(f"{message}{location}")
        self.line = line
        self.column = column


class DSLSemanticError(DSLError):
    """The DSL program parsed but refers to undefined stages, rebinds names, etc."""


class GraphError(ReproError):
    """The pipeline DAG is malformed (cycles, dangling stages, bad stencils)."""


class ILPError(ReproError):
    """Base class for errors raised by the ILP substrate."""


class InfeasibleError(ILPError):
    """The (integer) program has no feasible solution."""


class UnboundedError(ILPError):
    """The (integer) program is unbounded."""


class SolverError(ILPError):
    """A backend failed for a reason other than infeasibility/unboundedness."""


class SolverCancelled(SolverError):
    """A solve was cancelled cooperatively (e.g. it lost a backend race)."""


class SchedulingError(ReproError):
    """The accelerator scheduler could not produce a legal pipeline schedule."""


class MemoryConfigError(ReproError):
    """The requested on-chip memory specification cannot implement the design."""


class AllocationError(MemoryConfigError):
    """Line-buffer lines could not be packed into the available memory blocks."""


class SimulationError(ReproError):
    """The cycle-level or functional simulator detected an illegal condition."""


class ContentionError(SimulationError):
    """A memory block received more accesses in one cycle than it has ports (R3)."""


class CausalityError(SimulationError):
    """A consumer read a pixel before its producer wrote it (R1)."""


class EvictionError(SimulationError):
    """A pixel still needed by a consumer was overwritten in a line buffer (R2)."""


class RTLError(ReproError):
    """Verilog generation or structural linting failed."""


class BaselineError(ReproError):
    """A baseline generator (Darkroom / SODA / FixyNN) cannot handle the input."""
