"""Memory (and PE) power estimation for a scheduled accelerator.

The estimate follows the paper's methodology: per-access energy from the SRAM
model multiplied by the number of accesses, plus leakage, at one pixel per
cycle.  Access rates come from the line-buffer configuration in closed form;
the cycle-level simulator reproduces the same counts (a cross-check lives in
the test suite).

Steady-state access rates per line buffer
------------------------------------------
* classic SRAM line buffer: the producer performs 1 write per cycle and every
  consumer reads one pixel from each of the ``SH`` lines of its window, so the
  buffer serves ``1 + sum(SH_c)`` accesses per cycle (all but one block see a
  single access; the block shared with the writer sees two — the paper's
  Sec. 3.1 observation).
* FIFO (SODA): every block performs one push and one pop per cycle:
  ``2 * num_blocks`` accesses per cycle, regardless of stencil heights.
* Darkroom relays: pattern-identical reads are broadcast and count once, which
  falls out naturally because the relay stage is itself a consumer stage with
  its own reads counted on its own buffer.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.schedule import PipelineSchedule
from repro.dsl.ast import estimate_operation_count
from repro.estimate.sram_model import DEFAULT_TECH, SramTechModel
from repro.memory.linebuffer import FrameBufferConfig, LineBufferConfig


@dataclass
class BufferPower:
    """Power breakdown of one line buffer (mW)."""

    producer: str
    accesses_per_cycle: float
    dynamic_mw: float
    leakage_mw: float
    dff_mw: float

    @property
    def total_mw(self) -> float:
        return self.dynamic_mw + self.leakage_mw + self.dff_mw


@dataclass
class PowerReport:
    """Accelerator power summary (mW)."""

    schedule: PipelineSchedule
    buffers: dict[str, BufferPower] = field(default_factory=dict)
    #: Whole-frame history buffers of temporal pipelines (empty for 2-D ones).
    frame_buffers: dict[str, BufferPower] = field(default_factory=dict)
    pe_mw: float = 0.0

    @property
    def memory_dynamic_mw(self) -> float:
        return sum(b.dynamic_mw for b in self._all_buffers())

    @property
    def memory_leakage_mw(self) -> float:
        return sum(b.leakage_mw for b in self._all_buffers())

    @property
    def memory_dff_mw(self) -> float:
        return sum(b.dff_mw for b in self._all_buffers())

    @property
    def memory_mw(self) -> float:
        return sum(b.total_mw for b in self._all_buffers())

    @property
    def frame_memory_mw(self) -> float:
        return sum(b.total_mw for b in self.frame_buffers.values())

    @property
    def total_mw(self) -> float:
        return self.memory_mw + self.pe_mw

    @property
    def accesses_per_cycle(self) -> float:
        return sum(b.accesses_per_cycle for b in self._all_buffers())

    def _all_buffers(self):
        yield from self.buffers.values()
        yield from self.frame_buffers.values()


def buffer_access_rates(config: LineBufferConfig) -> float:
    """Steady-state SRAM accesses per cycle served by one line buffer."""
    if config.lines == 0:
        return 0.0
    if config.style == "fifo":
        return 2.0 * config.num_blocks
    reads = float(sum(config.reader_heights.values()))
    return 1.0 + reads


def frame_buffer_access_rates(config: FrameBufferConfig) -> float:
    """Steady-state SRAM accesses per cycle served by one frame buffer.

    The producer writes one pixel of the newest retained frame per cycle, and
    each of the ``depth`` retained frames is read at one pixel per cycle (the
    spatial windowing over a past frame happens in downstream line/register
    fabric, exactly as for the current frame).
    """
    return 1.0 + float(config.depth)


def power_report(
    schedule: PipelineSchedule,
    tech: SramTechModel | None = None,
    *,
    sizing: str = "fixed",
) -> PowerReport:
    """Estimate memory and PE power of a scheduled accelerator (mW).

    ``sizing`` selects how memory macros are modelled: ``"fixed"`` charges
    every block as one full-size macro of the memory spec (FPGA BRAMs, or an
    ASIC flow with a fixed macro library — the Fig. 8/9 accounting), while
    ``"custom"`` right-sizes each macro to the bits it actually stores (an
    ASIC flow with per-design memory compilation — the Fig. 10 DSE accounting,
    where coalescing trades fewer-but-larger macros for higher per-access
    energy).
    """
    tech = tech or DEFAULT_TECH
    report = PowerReport(schedule=schedule)

    for producer, config in schedule.line_buffers.items():
        accesses = buffer_access_rates(config)
        ports = config.spec.ports
        if sizing == "custom" and config.blocks:
            energies = [
                tech.macro_access_energy_pj(block.used_bits or config.spec.block_bits, ports)
                for block in config.blocks
            ]
            energy = sum(energies) / len(energies)
            leakage = sum(
                tech.macro_leakage_mw(block.used_bits or config.spec.block_bits, ports)
                for block in config.blocks
            )
        else:
            energy = tech.access_energy_pj(config.spec)
            leakage = config.num_blocks * tech.block_leakage_mw(config.spec)
        dynamic = tech.dynamic_power_mw(accesses, energy)
        dff = tech.dff_power_mw(config.dff_pixels, config.spec.pixel_bits) if config.dff_pixels else 0.0
        report.buffers[producer] = BufferPower(
            producer=producer,
            accesses_per_cycle=accesses,
            dynamic_mw=dynamic,
            leakage_mw=leakage,
            dff_mw=dff,
        )

    for producer, frame in schedule.frame_buffers.items():
        accesses = frame_buffer_access_rates(frame)
        energy = tech.access_energy_pj(frame.spec)
        report.frame_buffers[producer] = BufferPower(
            producer=producer,
            accesses_per_cycle=accesses,
            dynamic_mw=tech.dynamic_power_mw(accesses, energy),
            leakage_mw=frame.num_blocks * tech.block_leakage_mw(frame.spec),
            dff_mw=0.0,
        )

    ops_per_cycle = 0
    for stage in schedule.dag.stages():
        if stage.expression is not None:
            ops_per_cycle += estimate_operation_count(stage.expression)
    report.pe_mw = tech.pe_power_mw(float(ops_per_cycle))
    return report
