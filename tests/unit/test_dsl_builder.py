"""Unit tests for the Python pipeline builder."""

import numpy as np
import pytest

from repro.dsl import ast
from repro.dsl.builder import PipelineBuilder, convolve, window_average, window_sum
from repro.errors import DSLSemanticError
from repro.ir.stencil import StencilWindow


class TestBuilder:
    def test_simple_chain(self):
        builder = PipelineBuilder("p")
        k0 = builder.input("K0")
        k1 = builder.stage("K1", window_sum(k0, 3, 3))
        builder.output("K2", k1(0, 0) * 2.0)
        dag = builder.build()
        assert len(dag) == 3
        assert dag.edge("K0", "K1").window.height == 3
        assert dag.edge("K1", "K2").window.size == 1

    def test_windows_derived_from_expression(self):
        builder = PipelineBuilder()
        k0 = builder.input("K0")
        builder.output("K1", k0(-2, -1) + k0(2, 1))
        dag = builder.build()
        window = dag.edge("K0", "K1").window
        assert window.width == 5 and window.height == 3

    def test_explicit_reads_without_expression(self):
        builder = PipelineBuilder()
        k0 = builder.input("K0")
        builder.output("K1", reads={k0: StencilWindow.centered(3, 3)})
        dag = builder.build()
        assert dag.edge("K0", "K1").window.height == 3
        assert dag.stage("K1").expression is None

    def test_expression_and_reads_merge(self):
        builder = PipelineBuilder()
        k0 = builder.input("K0")
        builder.output("K1", k0(0, 0), reads={"K0": StencilWindow.centered(5, 5)})
        dag = builder.build()
        assert dag.edge("K0", "K1").window.height == 5

    def test_stage_requires_reads(self):
        builder = PipelineBuilder()
        builder.input("K0")
        with pytest.raises(DSLSemanticError):
            builder.stage("K1")

    def test_build_only_once(self):
        builder = PipelineBuilder()
        k0 = builder.input("K0")
        builder.output("K1", k0(0, 0))
        builder.build()
        with pytest.raises(DSLSemanticError):
            builder.build()

    def test_handle_repr_and_ref(self):
        builder = PipelineBuilder()
        k0 = builder.input("K0")
        assert "K0" in repr(k0)
        assert k0.ref(1, 2) == ast.StageRef("K0", 1, 2)


class TestExpressionHelpers:
    def test_window_sum_matches_manual(self):
        builder = PipelineBuilder()
        k0 = builder.input("K0")
        expr = window_sum(k0, 3, 3)
        image = np.arange(36, dtype=float).reshape(6, 6)
        result = ast.evaluate(expr, {"K0": image})
        # Interior pixel: sum of the 3x3 neighbourhood.
        expected = image[1:4, 1:4].sum()
        assert result[2, 2] == pytest.approx(expected)

    def test_window_average(self):
        builder = PipelineBuilder()
        k0 = builder.input("K0")
        expr = window_average(k0, 3, 3)
        image = np.full((5, 5), 7.0)
        result = ast.evaluate(expr, {"K0": image})
        np.testing.assert_allclose(result, 7.0)

    def test_convolve_identity_kernel(self):
        builder = PipelineBuilder()
        k0 = builder.input("K0")
        expr = convolve(k0, [[0.0, 0.0, 0.0], [0.0, 1.0, 0.0], [0.0, 0.0, 0.0]])
        image = np.arange(25, dtype=float).reshape(5, 5)
        np.testing.assert_allclose(ast.evaluate(expr, {"K0": image}), image)

    def test_convolve_normalize(self):
        builder = PipelineBuilder()
        k0 = builder.input("K0")
        expr = convolve(k0, [[1.0, 1.0], [1.0, 1.0]], normalize=True)
        image = np.full((4, 4), 3.0)
        np.testing.assert_allclose(ast.evaluate(expr, {"K0": image}), 3.0)

    def test_convolve_rejects_ragged_kernel(self):
        builder = PipelineBuilder()
        k0 = builder.input("K0")
        with pytest.raises(DSLSemanticError):
            convolve(k0, [[1.0, 2.0], [3.0]])

    def test_convolve_rejects_zero_kernel(self):
        builder = PipelineBuilder()
        k0 = builder.input("K0")
        with pytest.raises(DSLSemanticError):
            convolve(k0, [[0.0, 0.0], [0.0, 0.0]])

    def test_top_left_anchored_window_sum(self):
        builder = PipelineBuilder()
        k0 = builder.input("K0")
        expr = window_sum(k0, 2, 2, centered=False)
        windows = ast.stencil_windows(expr)
        assert windows["K0"].min_dx == 0 and windows["K0"].max_dy == 1
