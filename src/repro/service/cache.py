"""Two-tier compile cache: in-memory LRU backed by an optional disk store.

Stability: public.

The cache's unit of storage is a solved :class:`PipelineSchedule`, keyed by
the content fingerprint of the :class:`repro.api.CompileTarget` that produced
it (:func:`repro.api.fingerprint.compile_fingerprint`).  Caching at schedule
granularity (rather than whole :class:`CompiledAccelerator` objects) means the
two ILP solves of ``compile_pipeline``'s auto-coalescing fallback each get
their own entry, so a later plain compile of the same pipeline reuses the
fallback's non-coalesced solve.

Fingerprints are generator-aware, so baseline designs (Darkroom/SODA/FixyNN)
are cached exactly like optimized ones — in both tiers.  ImaGen-generated
disk entries hold just the solver's decisions (start cycles and coalescing
factors) plus the request geometry: their physical line-buffer configurations
are re-derived on load through
:func:`repro.core.scheduler.realize_line_buffers`, which is a pure function of
those decisions, so the payloads stay small and always match what the
allocator would produce today.  Baseline schedules use FIFO chains, dummy
relay stages and other structures the allocator cannot re-derive, so their
payloads embed the full line-buffer configurations instead
(:meth:`repro.memory.linebuffer.LineBufferConfig.to_payload`).  Either way, a
round-tripped schedule produces bit-identical area and power reports.

The disk store shards entries into two-hex-char fingerprint-prefix
subdirectories (``ab/abcd....json``) so large shared cache volumes never hit
flat-directory limits; entries written by pre-sharding versions of the
library are still found at their legacy flat paths.  Shared volumes can be
bounded with ``DiskCacheStore(max_bytes=..., max_age_seconds=...)``:
least-recently-used entries (by file mtime — loads refresh it) are evicted
whenever a save would exceed the bound.
"""

from __future__ import annotations

import json
import math
import os
import tempfile
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, replace
from pathlib import Path

from repro.api.fingerprint import dag_fingerprint
from repro.api.target import CompileTarget
from repro.core.schedule import PipelineSchedule
from repro.core.scheduler import realize_line_buffers
from repro.core.warmstart import WarmHint, hint_from_schedule
from repro.ir.dag import PipelineDAG
from repro.memory.linebuffer import LineBufferConfig
from repro.memory.spec import MemorySpec
from repro.service.events import emit_event
from repro.trace import span_attr, trace_span

#: Bump when the serialized payload layout changes; stale disk entries are
#: treated as misses rather than errors.  Version 2 added the optional
#: ``line_buffers`` field that makes baseline schedules persistable; version 1
#: (decisions-only) entries are still readable.
SCHEDULE_FORMAT_VERSION = 2

_READABLE_VERSIONS = (1, 2)

#: Result source markers shared with the engine's per-request accounting.
SOURCE_MEMORY = "memory"
SOURCE_DISK = "disk"
SOURCE_SOLVER = "solver"

#: Schedule generators whose line buffers :func:`realize_line_buffers` can
#: re-derive from the solver decisions alone; other generators' payloads must
#: embed the full configurations.
REALIZABLE_GENERATORS = ("imagen", "imagen+lc")


# ---------------------------------------------------------------------------
# Schedule (de)serialization
# ---------------------------------------------------------------------------
def serialize_schedule(
    schedule: PipelineSchedule, *, include_line_buffers: bool | None = None
) -> dict:
    """Flatten a solved schedule into a JSON-serializable payload.

    ``include_line_buffers`` controls whether the physical line-buffer
    configurations are embedded verbatim: the default (``None``) embeds them
    only for schedules the allocator cannot re-derive (baseline generators);
    the wire codec forces ``True`` so process workers never depend on
    re-derivation.
    """
    stats = {
        key: value
        for key, value in schedule.solver_stats.items()
        if isinstance(value, (str, int, float, bool)) or value is None
    }
    payload = {
        "version": SCHEDULE_FORMAT_VERSION,
        "image_width": schedule.image_width,
        "image_height": schedule.image_height,
        "memory_spec": {
            "name": schedule.memory_spec.name,
            "block_bits": schedule.memory_spec.block_bits,
            "ports": schedule.memory_spec.ports,
            "pixel_bits": schedule.memory_spec.pixel_bits,
            "style": schedule.memory_spec.style,
            "allow_coalescing": schedule.memory_spec.allow_coalescing,
        },
        "generator": schedule.generator,
        "start_cycles": dict(schedule.start_cycles),
        "coalesce_factors": dict(schedule.coalesce_factors),
        "ports": int(stats.get("ports", schedule.memory_spec.ports)),
        "solver_stats": stats,
    }
    if include_line_buffers is None:
        include_line_buffers = schedule.generator not in REALIZABLE_GENERATORS
    if include_line_buffers:
        payload["line_buffers"] = {
            name: config.to_payload() for name, config in schedule.line_buffers.items()
        }
    return payload


def deserialize_schedule(payload: dict, dag: PipelineDAG) -> PipelineSchedule:
    """Rebuild a schedule from :func:`serialize_schedule` output.

    The caller supplies the pipeline DAG (cache keys already guarantee it is
    structurally identical to the one that was compiled).  Payloads embedding
    explicit ``line_buffers`` restore them verbatim; decisions-only payloads
    re-derive them through :func:`realize_line_buffers`, which keeps ImaGen
    entries small and guarantees they match what the allocator would produce
    today.
    """
    if payload.get("version") not in _READABLE_VERSIONS:
        raise ValueError(f"Unsupported schedule payload version {payload.get('version')!r}")
    memory_spec = MemorySpec(**payload["memory_spec"])
    start_cycles = {name: int(cycle) for name, cycle in payload["start_cycles"].items()}
    factors = {name: int(f) for name, f in payload["coalesce_factors"].items()}
    generator = payload.get("generator", "imagen")
    if "line_buffers" in payload:
        line_buffers = {
            name: LineBufferConfig.from_payload(config)
            for name, config in payload["line_buffers"].items()
        }
    elif generator in REALIZABLE_GENERATORS:
        line_buffers = realize_line_buffers(
            dag,
            int(payload["image_width"]),
            memory_spec,
            start_cycles,
            factors,
            int(payload["ports"]),
        )
    else:
        raise ValueError(
            f"Schedule payload for generator {generator!r} carries no line "
            "buffers and cannot be re-derived"
        )
    return PipelineSchedule(
        dag=dag,
        image_width=int(payload["image_width"]),
        image_height=int(payload["image_height"]),
        memory_spec=memory_spec,
        start_cycles=start_cycles,
        line_buffers=line_buffers,
        generator=payload.get("generator", "imagen"),
        coalesce_factors=factors,
        solver_stats=dict(payload.get("solver_stats", {})),
    )


# ---------------------------------------------------------------------------
# Stores
# ---------------------------------------------------------------------------
def _unlink_quietly(path: Path) -> None:
    """Remove a cache entry, tolerating concurrent evictors and odd volumes."""
    try:
        path.unlink(missing_ok=True)
    except OSError:
        pass


class DiskCacheStore:
    """Sharded directory of JSON files, one per fingerprint.

    Entries live under two-hex-char fingerprint-prefix subdirectories
    (``<dir>/ab/abcd....json``) so shared cache volumes with many thousands of
    entries never stress flat-directory lookups.  Entries written by older
    library versions at the flat ``<dir>/abcd....json`` path are still read.

    Writes go through a temp file + rename so concurrent readers never see a
    half-written entry; unreadable or stale entries degrade to cache misses.

    Parameters
    ----------
    max_bytes:
        When set, the total size of all entries is kept at or below this
        bound: every save evicts least-recently-used entries (oldest mtime
        first; successful loads refresh an entry's mtime) until the volume
        fits.  The bound holds even when many writers share the volume —
        each enforces it after its own write, and concurrent unlink races
        degrade to no-ops.
    max_age_seconds:
        When set, entries whose mtime is older than this are evicted by a
        sweep that runs on save, amortized to at most one per
        ``min(max_age_seconds, 60)`` seconds per writer (an age bound is
        advisory, unlike ``max_bytes``, which is re-verified on every save).
    """

    def __init__(
        self,
        directory: str | os.PathLike,
        *,
        max_bytes: int | None = None,
        max_age_seconds: float | None = None,
    ) -> None:
        if max_bytes is not None and max_bytes < 1:
            raise ValueError(f"max_bytes must be >= 1, got {max_bytes}")
        if max_age_seconds is not None and max_age_seconds <= 0:
            raise ValueError(f"max_age_seconds must be > 0, got {max_age_seconds}")
        self.directory = Path(directory)
        self.max_bytes = max_bytes
        self.max_age_seconds = max_age_seconds
        # Age-only sweeps are amortized on a timer; see _maybe_collect_garbage.
        self._gc_lock = threading.Lock()
        self._last_age_sweep = float("-inf")
        self.directory.mkdir(parents=True, exist_ok=True)

    @property
    def bounded(self) -> bool:
        """Whether any size/age bound is configured (GC runs on save)."""
        return self.max_bytes is not None or self.max_age_seconds is not None

    def path_for(self, fingerprint: str) -> Path:
        return self.directory / fingerprint[:2] / f"{fingerprint}.json"

    def legacy_path_for(self, fingerprint: str) -> Path:
        """Flat pre-sharding location, still consulted on reads."""
        return self.directory / f"{fingerprint}.json"

    def load(self, fingerprint: str) -> dict | None:
        with trace_span("disk_read"):
            for path in (self.path_for(fingerprint), self.legacy_path_for(fingerprint)):
                try:
                    with path.open("r", encoding="utf-8") as handle:
                        payload = json.load(handle)
                except FileNotFoundError:
                    continue
                except (OSError, ValueError):
                    span_attr(hit=False)
                    return None
                if self.bounded:
                    # Refresh the mtime so the LRU-by-mtime GC sees hot entries
                    # as recently used, not as old as their write time.
                    try:
                        os.utime(path)
                    except OSError:
                        pass  # a concurrent eviction won the race; the read stands
                span_attr(hit=True)
                return payload
            span_attr(hit=False)
            return None

    def save(self, fingerprint: str, payload: dict) -> bool:
        """Persist one entry; returns ``False`` when the write failed.

        The temp name is unique per writer (``mkstemp`` in the shard
        directory): several processes sharing one cache volume may save the
        same fingerprint concurrently, and a shared temp path would let their
        writes interleave and rename corrupt JSON into place.
        """
        path = self.path_for(fingerprint)
        tmp: Path | None = None
        with trace_span("disk_write"):
            try:
                # Non-recursive mkdir: if the store's base directory disappeared,
                # degrade to a failed write instead of silently recreating it.
                path.parent.mkdir(exist_ok=True)
                fd, tmp_name = tempfile.mkstemp(
                    prefix=f"{fingerprint}.", suffix=".tmp", dir=path.parent
                )
                tmp = Path(tmp_name)
                with os.fdopen(fd, "w", encoding="utf-8") as handle:
                    json.dump(payload, handle, sort_keys=True)
                tmp.replace(path)
            except OSError:
                if tmp is not None:
                    tmp.unlink(missing_ok=True)
                span_attr(ok=False)
                return False
            try:
                # The sharded entry now shadows any pre-sharding flat twin; drop
                # the flat file so __len__/clear see one entry per fingerprint.
                self.legacy_path_for(fingerprint).unlink(missing_ok=True)
            except OSError:
                pass  # the write itself succeeded; a stale twin is harmless
            if self.bounded:
                self._maybe_collect_garbage()
            span_attr(ok=True)
        return True

    def _maybe_collect_garbage(self) -> None:
        """Decide whether this save must pay for a volume scan.

        ``max_bytes`` is a *hard* bound shared by writers that cannot see
        each other, so every byte-bounded save re-verifies it with a scan —
        a cheaper per-writer size estimate cannot rule out another process
        having consumed the same headroom.  The scan is stat-only (no entry
        is read) and O(entries); deployments for which that is too dear per
        solve should prefer an age bound, which is advisory by nature and
        therefore amortized here to at most one sweep per
        ``min(max_age_seconds, 60)`` seconds per writer.
        """
        if self.max_bytes is not None:
            self._collect_garbage()
            return
        interval = min(self.max_age_seconds, 60.0)
        with self._gc_lock:
            due = time.monotonic() - self._last_age_sweep >= interval
        if due:
            self._collect_garbage()

    def _collect_garbage(self) -> None:
        """Evict entries until the store fits its size/age bounds.

        Strictly oldest-mtime-first, *including* the entry just written: if a
        single entry alone exceeds ``max_bytes`` the bound still wins and the
        entry degrades to a future cache miss.  Stat/unlink failures are
        treated as "another writer already evicted it" — the routine is run
        concurrently by every process sharing the volume.
        """
        entries = []
        for path in list(self.directory.glob("??/*.json")) + list(
            self.directory.glob("*.json")
        ):
            try:
                stat = path.stat()
            except OSError:
                continue
            entries.append((stat.st_mtime, stat.st_size, path))
        entries.sort()  # oldest mtime first == least recently used first
        evicted = 0
        survivors = []
        if self.max_age_seconds is not None:
            deadline = time.time() - self.max_age_seconds
            for entry in entries:
                if entry[0] < deadline:
                    _unlink_quietly(entry[2])
                    evicted += 1
                else:
                    survivors.append(entry)
            entries = survivors
        remaining = sum(size for _, size, _ in entries)
        if self.max_bytes is not None:
            for _, size, path in entries:
                if remaining <= self.max_bytes:
                    break
                _unlink_quietly(path)
                evicted += 1
                remaining -= size
        with self._gc_lock:
            self._last_age_sweep = time.monotonic()
        emit_event(
            "cache.gc",
            evicted=evicted,
            remaining_bytes=remaining,
            directory=str(self.directory),
        )

    def total_bytes(self) -> int:
        """Current total size of all entries (sharded + legacy flat)."""
        total = 0
        for path in self._entry_paths():
            try:
                total += path.stat().st_size
            except OSError:
                continue
        return total

    def _entry_paths(self):
        """One path per fingerprint (a sharded entry shadows its flat twin)."""
        sharded = set()
        for path in self.directory.glob("??/*.json"):
            sharded.add(path.stem)
            yield path
        for path in self.directory.glob("*.json"):  # legacy flat entries
            if path.stem not in sharded:
                yield path

    def __len__(self) -> int:
        return sum(1 for _ in self._entry_paths())

    def clear(self) -> None:
        # Raw globs, not the deduplicated view: a fingerprint present at both
        # the sharded and the legacy flat path must lose both files.  Stray
        # temp files from writers that died mid-save are swept up too.
        for pattern in ("*.json", "??/*.json", "??/*.tmp"):
            for path in list(self.directory.glob(pattern)):
                path.unlink(missing_ok=True)


@dataclass
class CacheStats:
    """Counters describing cache behaviour since construction (or clear)."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    stores: int = 0
    disk_hits: int = 0
    disk_stores: int = 0
    #: Nearest-neighbor warm-start lookups (:meth:`CompileCache.fetch_neighbor`)
    #: that found / failed to find a same-DAG schedule to seed the solver with.
    neighbor_hits: int = 0
    neighbor_misses: int = 0

    @property
    def requests(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.requests if self.requests else 0.0

    def snapshot(self) -> "CacheStats":
        return replace(self)

    def as_dict(self) -> dict[str, float | int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "stores": self.stores,
            "disk_hits": self.disk_hits,
            "disk_stores": self.disk_stores,
            "neighbor_hits": self.neighbor_hits,
            "neighbor_misses": self.neighbor_misses,
            "hit_rate": round(self.hit_rate, 4),
        }


class CompileCache:
    """Thread-safe LRU of solved schedules with an optional disk tier.

    ``hits`` counts both tiers (a disk hit is also counted in ``disk_hits``
    and promotes the entry into memory).  All methods are safe to call from
    the engine's worker threads.
    """

    def __init__(self, max_entries: int = 256, store: DiskCacheStore | None = None) -> None:
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        self.max_entries = max_entries
        self.store = store
        self.stats = CacheStats()
        self._entries: OrderedDict[str, PipelineSchedule] = OrderedDict()
        # Secondary index for warm-start lookups: DAG fingerprint -> the
        # memory-tier entry fingerprints of that pipeline (insertion order).
        self._dag_index: dict[str, OrderedDict[str, None]] = {}
        self._dag_of: dict[str, str] = {}
        self._lock = threading.RLock()

    # ------------------------------------------------------------------ reads
    def fetch(self, target: CompileTarget) -> tuple[PipelineSchedule | None, str, str]:
        """Look up one target; returns ``(schedule | None, source, fingerprint)``.

        ``source`` is :data:`SOURCE_MEMORY`, :data:`SOURCE_DISK`, or
        :data:`SOURCE_SOLVER` (meaning: not cached, the caller must solve).
        """
        fingerprint = target.fingerprint  # memoized on the target
        with trace_span("cache"):
            with self._lock:
                schedule = self._entries.get(fingerprint)
                if schedule is not None:
                    self._entries.move_to_end(fingerprint)
                    self.stats.hits += 1
                    span_attr(tier=SOURCE_MEMORY)
                    return schedule, SOURCE_MEMORY, fingerprint
            if self.store is not None:
                payload = self.store.load(fingerprint)
                if payload is not None:
                    try:
                        schedule = deserialize_schedule(payload, target.dag)
                    except Exception:
                        # Any malformed, stale, or version-skewed entry (bad spec
                        # fields, missing stages, ...) degrades to a cache miss.
                        schedule = None
                    if schedule is not None:
                        with self._lock:
                            self._insert(fingerprint, schedule)
                            self.stats.hits += 1
                            self.stats.disk_hits += 1
                        span_attr(tier=SOURCE_DISK)
                        return schedule, SOURCE_DISK, fingerprint
            with self._lock:
                self.stats.misses += 1
            span_attr(tier="miss")
            return None, SOURCE_SOLVER, fingerprint

    def fetch_neighbor(self, target: CompileTarget) -> WarmHint | None:
        """Nearest cached solve of the same pipeline, as a warm-start hint.

        Called by the compiler after :meth:`fetch` missed: an exact entry does
        not exist, but the memory tier may hold the *same DAG* solved at
        another resolution or coalescing selection, whose solution can seed
        (often outright certify — see :mod:`repro.core.warmstart`) the new
        solve.  Only ImaGen-family schedules qualify; baselines are built by
        construction, not solved, and transfer nothing.  Ranking prefers a
        same-width neighbor (options-only distance), then the closest width by
        resolution ratio.  Returns ``None`` when no neighbor exists.
        """
        fingerprint = target.fingerprint
        dag_key = dag_fingerprint(target.dag)
        best: PipelineSchedule | None = None
        best_fingerprint = ""
        best_rank: tuple | None = None
        with self._lock:
            for candidate in self._dag_index.get(dag_key, ()):
                if candidate == fingerprint:
                    continue
                schedule = self._entries.get(candidate)
                if (
                    schedule is None
                    or schedule.generator not in REALIZABLE_GENERATORS
                    or schedule.image_width < 2
                ):
                    continue
                rank = (
                    schedule.image_width != target.image_width,
                    abs(math.log(schedule.image_width / target.image_width)),
                )
                if best_rank is None or rank < best_rank:
                    best, best_fingerprint, best_rank = schedule, candidate, rank
            if best is None:
                self.stats.neighbor_misses += 1
                return None
            self.stats.neighbor_hits += 1
        return replace(hint_from_schedule(best), fingerprint=best_fingerprint)

    # ----------------------------------------------------------------- writes
    def put(self, fingerprint: str, schedule: PipelineSchedule) -> None:
        """Record a freshly solved schedule under its fingerprint.

        Every generator's schedules persist to the disk tier when one is
        configured: ImaGen schedules as decisions-only payloads, baselines
        with their full line-buffer configurations embedded (see
        :func:`serialize_schedule`).
        """
        with self._lock:
            self._insert(fingerprint, schedule)
            self.stats.stores += 1
        if self.store is not None:
            if self.store.save(fingerprint, serialize_schedule(schedule)):
                with self._lock:
                    self.stats.disk_stores += 1

    def absorb(self, fingerprint: str, schedule: PipelineSchedule) -> None:
        """Adopt a schedule solved elsewhere into the memory tier only.

        Used by the engine to warm its in-process LRU from results that a
        process-pool worker computed (the worker already persisted them to
        the shared disk tier, so no disk write and no ``stores`` counter —
        this is bookkeeping, not a new solve).
        """
        with self._lock:
            self._insert(fingerprint, schedule)

    def _insert(self, fingerprint: str, schedule: PipelineSchedule) -> None:
        self._entries[fingerprint] = schedule
        self._entries.move_to_end(fingerprint)
        if fingerprint not in self._dag_of:
            dag_key = dag_fingerprint(schedule.dag)
            self._dag_of[fingerprint] = dag_key
            self._dag_index.setdefault(dag_key, OrderedDict())[fingerprint] = None
        while len(self._entries) > self.max_entries:
            evicted, _ = self._entries.popitem(last=False)
            dag_key = self._dag_of.pop(evicted, None)
            if dag_key is not None:
                siblings = self._dag_index.get(dag_key)
                if siblings is not None:
                    siblings.pop(evicted, None)
                    if not siblings:
                        del self._dag_index[dag_key]
            self.stats.evictions += 1

    # ------------------------------------------------------------------ admin
    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, fingerprint: str) -> bool:
        with self._lock:
            return fingerprint in self._entries

    def clear(self, *, disk: bool = False) -> None:
        with self._lock:
            self._entries.clear()
            self._dag_index.clear()
            self._dag_of.clear()
            self.stats = CacheStats()
        if disk and self.store is not None:
            self.store.clear()
