"""Vectorized multi-frame functional replay with content-addressed digests.

The functional simulator (:mod:`repro.sim.functional`) is pixel-accurate but
was invoked one frame at a time; verification-as-a-service wants *frame
throughput*.  This module batches replay across frames: inputs become
``(frames, height, width)`` stacks and every stage expression evaluates once
over the whole stack (``repro.dsl.ast._shifted`` shifts only the trailing two
axes), so the Python/NumPy dispatch overhead is paid per *stage*, not per
``stage x frame``.

Frames are generated deterministically from ``(seed, input-stage name)`` so a
replay is reproducible anywhere from the scalar parameters alone, and outputs
collapse to a SHA-256 **digest** — the unit the verify service caches and
compares.  Two replays agree iff their digests match bit-for-bit; the digest
of a rewritten DAG (Darkroom linearization, coalescing relays) must equal the
digest of the original, which is exactly the golden check served by
``POST /v1/verify``.
"""

from __future__ import annotations

import hashlib
import zlib
from dataclasses import dataclass

import numpy as np

from repro.errors import SimulationError
from repro.ir.dag import PipelineDAG
from repro.sim.functional import FunctionalResult, run_functional


def golden_frames(
    dag: PipelineDAG, width: int, height: int, *, frames: int = 2, seed: int = 0
) -> dict[str, np.ndarray]:
    """Deterministic ``(frames, height, width)`` input stacks for ``dag``.

    Each input stage gets its own stream seeded by ``(seed, crc32(name))``, so
    the stacks depend only on the scalar parameters — not on dict ordering,
    platform, or process — and any two services replaying the same request
    generate bit-identical inputs.  Values are integers in ``[0, 256)`` stored
    as float64, matching the test fixtures' convention.
    """
    if frames < 1:
        raise SimulationError(f"frames must be >= 1, got {frames}")
    if width < 1 or height < 1:
        raise SimulationError(f"Frame resolution must be positive, got {width}x{height}")
    stacks: dict[str, np.ndarray] = {}
    for stage in dag.input_stages():
        rng = np.random.default_rng([seed, zlib.crc32(stage.name.encode("utf-8"))])
        stacks[stage.name] = rng.integers(0, 256, size=(frames, height, width)).astype(
            np.float64
        )
    return stacks


def output_digest(outputs: dict[str, np.ndarray]) -> str:
    """SHA-256 over output stacks: names, shapes and raw float64 bytes.

    Bit-exact by construction — the replay pipeline only applies IEEE-exact
    elementwise operations in a fixed order, so a digest mismatch means the
    two pipelines *compute different functions*, never float wobble.
    """
    hasher = hashlib.sha256()
    for name in sorted(outputs):
        array = np.ascontiguousarray(np.asarray(outputs[name], dtype=np.float64))
        hasher.update(name.encode("utf-8"))
        hasher.update(repr(array.shape).encode("ascii"))
        hasher.update(array.tobytes())
    return hasher.hexdigest()


@dataclass
class BatchReplay:
    """One vectorized replay: the stacked outputs plus their digest."""

    dag: PipelineDAG
    frames: int
    seed: int
    result: FunctionalResult
    outputs: dict[str, np.ndarray]
    digest: str

    def output(self) -> np.ndarray:
        """The ``(frames, height, width)`` stack of the first output stage."""
        return self.result.output()


def replay_frames(
    dag: PipelineDAG, width: int, height: int, *, frames: int = 2, seed: int = 0
) -> BatchReplay:
    """Replay ``frames`` deterministic frames through ``dag`` in one pass.

    Spatial pipelines replay the stack as an independent-frame batch (the
    historic behaviour); temporal pipelines replay it as a time sequence
    (``axes="tyx"``), so ``dt`` references reach earlier frames of the same
    stack, clamped at frame 0.
    """
    inputs = golden_frames(dag, width, height, frames=frames, seed=seed)
    axes = "tyx" if dag.is_temporal() else None
    result = run_functional(dag, inputs, axes=axes)
    outputs = result.outputs()
    return BatchReplay(
        dag=dag,
        frames=frames,
        seed=seed,
        result=result,
        outputs=outputs,
        digest=output_digest(outputs),
    )


def replay_frames_loop(
    dag: PipelineDAG, width: int, height: int, *, frames: int = 2, seed: int = 0
) -> BatchReplay:
    """Reference per-frame replay loop (identical semantics, one frame at a time).

    Kept as the oracle for the vectorized path: same inputs, same outputs,
    same digest — only the dispatch cost differs.  The throughput benchmark
    (``benchmarks/test_verify_throughput.py``) guards the speedup between the
    two.

    For a temporal pipeline each iteration carries the sliding window of past
    input frames the deepest ``dt`` reference needs (clamp-at-frame-0 only
    ever applies inside the first ``depth`` frames, matching the vectorized
    semantics exactly), and keeps the window's last frame.
    """
    inputs = golden_frames(dag, width, height, frames=frames, seed=seed)
    per_frame: list[FunctionalResult] = []
    depth = dag.history_depth()
    for index in range(frames):
        if depth:
            lo = max(0, index - depth)
            window_inputs = {name: stack[lo : index + 1] for name, stack in inputs.items()}
            windowed = run_functional(dag, window_inputs, axes="tyx")
            per_frame.append(
                FunctionalResult(
                    dag=dag,
                    images={name: img[-1] for name, img in windowed.images.items()},
                )
            )
        else:
            frame_inputs = {name: stack[index] for name, stack in inputs.items()}
            per_frame.append(run_functional(dag, frame_inputs))
    stacked: dict[str, np.ndarray] = {}
    for name in per_frame[0].images:
        stacked[name] = np.stack([result.images[name] for result in per_frame])
    result = FunctionalResult(dag=dag, images=stacked)
    outputs = result.outputs()
    return BatchReplay(
        dag=dag,
        frames=frames,
        seed=seed,
        result=result,
        outputs=outputs,
        digest=output_digest(outputs),
    )
