"""Unit tests for access-set arithmetic (Eq. 3/4, Eq. 12, buffer sizing)."""

import pytest

from repro.core.access import (
    access_set,
    ceil_div,
    first_line,
    minimal_slot_count,
    model_line_slots,
    required_line_slots,
    separation_requirement,
    sets_disjoint,
)

W = 64


class TestLineFormulas:
    def test_ceil_div(self):
        assert ceil_div(0, 4) == 0
        assert ceil_div(1, 4) == 1
        assert ceil_div(4, 4) == 1
        assert ceil_div(5, 4) == 2

    def test_first_line_matches_eq3(self):
        assert first_line(10, 10, W) == 0
        assert first_line(10 + 1, 10, W) == 1
        assert first_line(10 + W, 10, W) == 1
        assert first_line(10 + W + 1, 10, W) == 2

    def test_first_line_before_start_raises(self):
        with pytest.raises(ValueError):
            first_line(5, 10, W)

    def test_access_set_height(self):
        lines = access_set(100, 0, W, 3)
        assert len(lines) == 3
        assert lines.start == first_line(100, 0, W)


class TestSeparation:
    def test_separation_requirement_matches_eq12(self):
        assert separation_requirement(3, W) == 3 * W
        assert separation_requirement(1, 2 * W) == 2 * W

    def test_separation_implies_disjoint_sets(self):
        # Trailing stage with SH=3 behind a writer (SH=1) by exactly 3W.
        gap = separation_requirement(3, W)
        for t in range(gap, gap + 4 * W):
            assert sets_disjoint(t, gap, 3, 0, 1, W)

    def test_smaller_gap_eventually_conflicts(self):
        gap = separation_requirement(3, W) - W  # one line too close
        conflict = any(not sets_disjoint(t, gap, 3, 0, 1, W) for t in range(gap, gap + 4 * W))
        assert conflict

    def test_sets_disjoint_before_start_is_true(self):
        assert sets_disjoint(5, 10, 3, 20, 1, W)


class TestBufferSizing:
    def test_required_slots_classic_case(self):
        # Dual-port 3x3: delay (SH-1)*W + 1 -> 3 line slots (Fig. 1).
        assert required_line_slots(2 * W + 1, W) == 3

    def test_required_slots_exact_multiple(self):
        # Single-port 3x3: delay SH*W -> 4 line slots.
        assert required_line_slots(3 * W, W) == 4

    def test_required_slots_small_delays(self):
        assert required_line_slots(0, W) == 1
        assert required_line_slots(1, W) == 1
        assert required_line_slots(W - 1, W) == 1
        assert required_line_slots(W, W) == 2

    def test_required_slots_negative_rejected(self):
        with pytest.raises(ValueError):
            required_line_slots(-1, W)

    def test_model_line_slots_matches_eq2(self):
        assert model_line_slots(2 * W + 1, W) == 3
        assert model_line_slots(3 * W, W) == 3
        assert model_line_slots(0, W) == 0


class TestMinimalSlotCount:
    def test_classic_dual_port_needs_three(self):
        slots = minimal_slot_count(W, 2, [(2 * W + 1, 3)])
        assert slots == 3

    def test_single_port_needs_stencil_plus_one(self):
        slots = minimal_slot_count(W, 1, [(3 * W, 3)])
        assert slots == 4

    def test_empty_accessors(self):
        assert minimal_slot_count(W, 2, []) == 0

    def test_multi_consumer_may_need_extra_slot(self):
        # Two consumers plus the writer on a dual-port buffer: the capacity
        # bound alone can alias the writer with the slowest reader.
        delays = [(2 * W + 1, 3), (4 * W + 2, 2)]
        slots = minimal_slot_count(W, 2, delays)
        assert slots >= required_line_slots(4 * W + 2, W)
        # And the returned count must actually be contention-free.
        from repro.core.access import _period_is_legal

        assert _period_is_legal(W, 2, [(0, 1)] + delays, slots, 1, (4 * W + 2 // W + 2) * W)

    def test_coalesced_grouping(self):
        slots = minimal_slot_count(W, 2, [(3 * W, 3)], coalesce_factor=2)
        assert slots >= 4
