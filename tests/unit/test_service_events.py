"""Unit tests for the structured engine-internal event log."""

import io
import json

import pytest

from repro.api import CompileTarget
from repro.service import CompileEngine, QueueFullError
from repro.service.cache import DiskCacheStore, serialize_schedule
from repro.service.events import EventLog, configure_event_log, get_event_log

from tests.conftest import TEST_HEIGHT, TEST_WIDTH, build_chain

W, H = TEST_WIDTH, TEST_HEIGHT


@pytest.fixture
def clean_default_log():
    """Isolate each test from the process-wide ring and stream settings."""
    log = get_event_log()
    log.clear()
    yield log
    configure_event_log(enabled=False)
    log.clear()


class TestEventLog:
    def test_ring_records_without_stream(self):
        log = EventLog(enabled=False, clock=lambda: 1000.0)
        log.emit("autoscaler.grow", executor="thread:auto", workers=3)
        records = log.recent("autoscaler.grow")
        assert records == [
            {
                "ts": 1000.0,
                "event": "autoscaler.grow",
                "identity": "",
                "executor": "thread:auto",
                "workers": 3,
            }
        ]
        assert log.emitted_total == 1

    def test_stream_gets_json_lines_when_enabled(self):
        stream = io.StringIO()
        log = EventLog(stream, enabled=True)
        log.emit("queue.shed", identity="alice", fingerprint="abc123", retry_after=0.5)
        record = json.loads(stream.getvalue())
        assert record["event"] == "queue.shed"
        assert record["identity"] == "alice"
        assert record["fingerprint"] == "abc123"
        assert record["retry_after"] == 0.5

    def test_disabled_log_writes_nothing(self):
        stream = io.StringIO()
        log = EventLog(stream, enabled=False)
        log.emit("cache.gc", evicted=2, remaining_bytes=0, directory="/tmp/x")
        assert stream.getvalue() == ""
        assert len(log.recent()) == 1

    def test_fingerprint_omitted_when_empty(self):
        log = EventLog(enabled=False)
        record = log.emit("autoscaler.shrink", executor="thread:auto", workers=1)
        assert "fingerprint" not in record

    def test_ring_is_bounded(self):
        log = EventLog(enabled=False, ring_size=4)
        for index in range(10):
            log.emit("e", index=index)
        records = log.recent()
        assert len(records) == 4
        assert records[0]["index"] == 6

    def test_recent_filters_by_event(self):
        log = EventLog(enabled=False)
        log.emit("a")
        log.emit("b")
        assert [r["event"] for r in log.recent("b")] == ["b"]

    def test_configure_default_log(self, clean_default_log):
        stream = io.StringIO()
        log = configure_event_log(enabled=True, stream=stream)
        assert log is get_event_log()
        log.emit("cache.gc", evicted=0, remaining_bytes=10, directory="d")
        assert json.loads(stream.getvalue())["event"] == "cache.gc"


class TestEngineEventWiring:
    def test_autoscaler_emits_grow_events(self, clean_default_log):
        engine = CompileEngine(workers=2, executor="thread:auto")
        try:
            # Batch fan-out is what exercises the executor (single submits on
            # in-process backends run on the calling thread).
            targets = [
                CompileTarget(build_chain(n), image_width=W, image_height=H)
                for n in (2, 3)
            ]
            engine.submit_batch(targets)
        finally:
            engine.shutdown()
        events = clean_default_log.recent("autoscaler.grow")
        assert events
        assert events[0]["executor"] == "thread:auto"
        assert events[0]["workers"] >= 1

    def test_queue_shed_emits_event(self, clean_default_log):
        from concurrent.futures import Future

        engine = CompileEngine(workers=1, executor="thread", max_pending=1, overflow="shed")
        # Play the executor's role: occupy the single dispatch slot with a
        # never-settling future, and fill the one queue slot behind it.
        hog: Future = Future()
        hog.set_running_or_notify_cancel()
        engine._admission.submit(lambda: hog, client="hog")
        engine._admission.submit(lambda: Future(), client="hog")
        target = CompileTarget(build_chain(2), image_width=W, image_height=H)
        with pytest.raises(QueueFullError):
            engine.submit(target, client="alice")
        events = clean_default_log.recent("queue.shed")
        hog.set_result(None)
        engine.shutdown()
        assert events
        assert events[-1]["identity"] == "alice"
        assert events[-1]["retry_after"] >= 0

    def test_cache_gc_emits_event(self, clean_default_log, tmp_path):
        from repro.core.compiler import compile_pipeline

        store = DiskCacheStore(tmp_path, max_bytes=1)  # everything is over budget
        schedule = compile_pipeline(
            build_chain(2), image_width=W, image_height=H
        ).schedule
        store.save("fp-old", serialize_schedule(schedule))
        store.save("fp-new", serialize_schedule(schedule))
        events = clean_default_log.recent("cache.gc")
        assert events
        assert events[-1]["directory"] == str(tmp_path)
        assert events[-1]["evicted"] >= 1
