"""Unit tests for the top-level compile facade."""

import pytest

from repro.core.compiler import compile_pipeline
from repro.core.scheduler import SchedulerOptions
from repro.memory.spec import asic_dual_port, asic_single_port

from tests.conftest import TEST_HEIGHT, TEST_WIDTH, build_chain, build_paper_example

W, H = TEST_WIDTH, TEST_HEIGHT


class TestCompile:
    def test_default_memory_spec(self):
        accelerator = compile_pipeline(build_chain(3), image_width=W, image_height=H)
        assert accelerator.schedule.memory_spec.name == asic_dual_port().name
        assert accelerator.compile_seconds > 0

    def test_coalescing_flag_overrides_options(self):
        accelerator = compile_pipeline(
            build_chain(3, stencil=5),
            image_width=W,
            image_height=H,
            coalescing=True,
            options=SchedulerOptions(coalescing=False),
        )
        assert accelerator.schedule.generator == "imagen+lc"

    def test_lc_never_allocates_more_than_plain(self):
        for dag_builder in (lambda: build_chain(3, stencil=3), build_paper_example):
            dag = dag_builder()
            plain = compile_pipeline(dag, image_width=W, image_height=H)
            coalesced = compile_pipeline(dag, image_width=W, image_height=H, coalescing=True)
            assert coalesced.schedule.total_allocated_bits <= plain.schedule.total_allocated_bits

    def test_memory_spec_passthrough(self):
        accelerator = compile_pipeline(
            build_chain(3), image_width=W, image_height=H, memory_spec=asic_single_port(),
            options=SchedulerOptions(ports=1),
        )
        assert accelerator.schedule.memory_spec.ports == 1

    def test_verify_runs_cycle_checks(self):
        accelerator = compile_pipeline(build_chain(3), image_width=W, image_height=H)
        report = accelerator.verify()
        assert report.ok
        assert report.steady_state_throughput == pytest.approx(1.0, abs=0.05)

    def test_reports_available(self):
        accelerator = compile_pipeline(build_paper_example(), image_width=W, image_height=H)
        area = accelerator.area_report()
        power = accelerator.power_report()
        assert area.memory_mm2 > 0
        assert power.memory_mw > 0

    def test_generate_verilog(self):
        accelerator = compile_pipeline(build_chain(3), image_width=W, image_height=H)
        verilog = accelerator.generate_verilog()
        assert "module accelerator_chain" in verilog
        assert "endmodule" in verilog

    def test_describe(self):
        accelerator = compile_pipeline(build_chain(3), image_width=W, image_height=H)
        assert "K0" in accelerator.describe()
        assert accelerator.dag is accelerator.schedule.dag


class TestFingerprintMetadata:
    def test_fingerprints_recorded_alongside_sources(self):
        from repro.api import CompileTarget
        from repro.service import CompileCache

        cache = CompileCache()
        target = CompileTarget(build_paper_example(), image_width=W, image_height=H)
        accelerator = compile_pipeline(target, cache=cache)
        sources = accelerator.metadata["schedule_sources"]
        fingerprints = accelerator.metadata["schedule_fingerprints"]
        assert len(fingerprints) == len(sources) == 1
        assert fingerprints[0] == target.fingerprint
        assert accelerator.fingerprint == target.fingerprint
        # The recorded fingerprint is the cache key of the stored entry.
        assert fingerprints[0] in cache

    def test_auto_coalescing_fallback_records_both_solves(self):
        from repro.api import CompileTarget
        from repro.service import CompileCache

        cache = CompileCache()
        target = CompileTarget(
            build_paper_example(), image_width=W, image_height=H
        ).with_options(coalescing=True)
        accelerator = compile_pipeline(target, cache=cache)
        sources = accelerator.metadata["schedule_sources"]
        fingerprints = accelerator.metadata["schedule_fingerprints"]
        assert len(fingerprints) == len(sources) == 2
        assert fingerprints[0] == target.fingerprint
        assert fingerprints[1] == target.with_options(coalescing=False).fingerprint
        assert all(fingerprint in cache for fingerprint in fingerprints)

    def test_fingerprints_recorded_even_without_cache(self):
        from repro.api import CompileTarget

        target = CompileTarget(build_chain(3), image_width=W, image_height=H)
        accelerator = compile_pipeline(target)
        assert accelerator.metadata["schedule_fingerprints"] == (target.fingerprint,)
        assert accelerator.metadata["schedule_sources"] == ("solver",)
        assert accelerator.target is target
