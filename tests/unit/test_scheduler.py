"""Unit tests for the ILP scheduler (paper Sec. 5)."""

import pytest

from repro.core.scheduler import SchedulerOptions, schedule_pipeline
from repro.errors import SchedulingError
from repro.memory.spec import asic_dual_port, asic_single_port

from tests.conftest import (
    TEST_HEIGHT,
    TEST_WIDTH,
    build_chain,
    build_paper_example,
    build_two_consumer,
)

W, H = TEST_WIDTH, TEST_HEIGHT


class TestChainScheduling:
    def test_dual_port_chain_is_asap(self):
        schedule = schedule_pipeline(build_chain(3), W, H, asic_dual_port())
        assert schedule.start("K0") == 0
        assert schedule.delay("K0", "K1") == 2 * W + 1
        assert schedule.delay("K1", "K2") == 2 * W + 1

    def test_dual_port_chain_buffer_sizes(self):
        schedule = schedule_pipeline(build_chain(3), W, H, asic_dual_port())
        assert schedule.line_buffers["K0"].lines == 3
        assert schedule.line_buffers["K1"].lines == 3
        assert "K2" not in schedule.line_buffers  # output stage has no buffer

    def test_single_port_chain_needs_extra_line(self):
        schedule = schedule_pipeline(
            build_chain(3), W, H, asic_single_port(), SchedulerOptions(ports=1)
        )
        assert schedule.delay("K0", "K1") == 3 * W
        assert schedule.line_buffers["K0"].lines == 4

    def test_pointwise_chain_uses_registers(self):
        schedule = schedule_pipeline(build_chain(3, stencil=1), W, H, asic_dual_port())
        for config in schedule.line_buffers.values():
            assert config.num_blocks == 0
            assert config.style == "registers"

    def test_generator_label(self):
        schedule = schedule_pipeline(build_chain(3), W, H, asic_dual_port())
        assert schedule.generator == "imagen"
        lc = schedule_pipeline(
            build_chain(3), W, H, asic_dual_port(), SchedulerOptions(coalescing=True)
        )
        assert lc.generator == "imagen+lc"


class TestMultiConsumerScheduling:
    def test_paper_example_respects_contention(self):
        schedule = schedule_pipeline(build_paper_example(), W, H, asic_dual_port())
        # K2 reads a 2x2 window of K0: the kept contention constraint demands
        # S_K2 - S_K0 >= 2W on top of the data dependencies.
        assert schedule.delay("K0", "K2") >= 2 * W
        assert schedule.delay("K0", "K1") >= 2 * W + 1
        assert schedule.delay("K1", "K2") >= 2 * W + 1

    def test_two_consumer_contention_is_resolved(self):
        schedule = schedule_pipeline(build_two_consumer(), W, H, asic_dual_port())
        delay_a = schedule.delay("K0", "A")
        delay_b = schedule.delay("K0", "B")
        # One of the two consumers (or one vs the other) must be pushed back by
        # a full stencil height; they cannot both sit at the ASAP point.
        assert max(delay_a, delay_b) >= 3 * W or abs(delay_a - delay_b) >= 3 * W

    def test_enumeration_matches_bigm(self):
        dag = build_two_consumer()
        big_m = schedule_pipeline(dag, W, H, asic_dual_port(), SchedulerOptions())
        enum = schedule_pipeline(
            dag, W, H, asic_dual_port(), SchedulerOptions(disjunction_strategy="enumerate")
        )
        assert big_m.solver_stats["objective"] == pytest.approx(enum.solver_stats["objective"])

    def test_pruning_does_not_change_optimum(self):
        dag = build_paper_example()
        with_pruning = schedule_pipeline(dag, W, H, asic_dual_port(), SchedulerOptions(pruning=True))
        without = schedule_pipeline(dag, W, H, asic_dual_port(), SchedulerOptions(pruning=False))
        assert with_pruning.solver_stats["objective"] == pytest.approx(
            without.solver_stats["objective"]
        )
        assert (
            with_pruning.solver_stats["pruned_contention_candidates"]
            <= without.solver_stats["pruned_contention_candidates"]
        )

    def test_solver_stats_populated(self):
        schedule = schedule_pipeline(build_paper_example(), W, H, asic_dual_port())
        stats = schedule.solver_stats
        assert stats["compile_seconds"] > 0
        assert stats["ports"] == 2
        assert stats["ilp_variables"] > 0
        assert stats["strategy"] == "bigm"


class TestOptionsAndErrors:
    def test_invalid_image_size(self):
        with pytest.raises(SchedulingError):
            schedule_pipeline(build_chain(3), 1, 1, asic_dual_port())

    def test_invalid_ports(self):
        with pytest.raises(SchedulingError):
            schedule_pipeline(build_chain(3), W, H, asic_dual_port(), SchedulerOptions(ports=0))

    def test_unknown_strategy(self):
        with pytest.raises(SchedulingError):
            schedule_pipeline(
                build_chain(3), W, H, asic_dual_port(), SchedulerOptions(disjunction_strategy="magic")
            )

    def test_python_backend_small_model(self):
        schedule = schedule_pipeline(
            build_chain(3), W, H, asic_dual_port(), SchedulerOptions(backend="python")
        )
        assert schedule.delay("K0", "K1") == 2 * W + 1


class TestCoalescedScheduling:
    def test_coalescing_reduces_blocks_on_tall_chain(self):
        dag = build_chain(3, stencil=5)
        plain = schedule_pipeline(dag, W, H, asic_dual_port())
        coalesced = schedule_pipeline(dag, W, H, asic_dual_port(), SchedulerOptions(coalescing=True))
        assert coalesced.total_blocks < plain.total_blocks

    def test_coalesced_line_count_multiple_of_factor(self):
        dag = build_chain(3, stencil=5)
        schedule = schedule_pipeline(dag, W, H, asic_dual_port(), SchedulerOptions(coalescing=True))
        for config in schedule.line_buffers.values():
            if config.coalesce_factor > 1:
                assert config.lines % config.coalesce_factor == 0

    def test_coalescing_respects_writer_separation(self):
        dag = build_chain(3, stencil=5)
        schedule = schedule_pipeline(dag, W, H, asic_dual_port(), SchedulerOptions(coalescing=True))
        assert schedule.delay("K0", "K1") >= 5 * W

    def test_per_stage_override_disables_coalescing(self):
        dag = build_chain(3, stencil=5)
        options = SchedulerOptions(coalescing=True, per_stage_coalescing={"K0": False, "K1": False})
        schedule = schedule_pipeline(dag, W, H, asic_dual_port(), options)
        assert all(config.coalesce_factor == 1 for config in schedule.line_buffers.values())
