#!/usr/bin/env python3
"""Render the generated tables in docs/ from their single sources of truth.

The metric-key tables come from the :data:`repro.service.observability.METRIC_SPECS`
registry and the CLI-flag table from the real ``python -m repro.service.http``
argument parser (:func:`repro.service.http.build_parser`) — so the docs cannot
drift from the code without this tool noticing.

Each generated region in a markdown file is delimited by marker comments::

    <!-- generated: metrics-table (tools/gen_docs_tables.py) -->
    ...table...
    <!-- end generated: metrics-table -->

Running the tool rewrites the content between every pair of markers.
``--check`` rewrites nothing and exits non-zero when any region is stale
(CI's docs job runs this; regenerate with ``PYTHONPATH=src python
tools/gen_docs_tables.py``).  ``--root`` points at another repo checkout
(used by the tests against temp copies).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.service.http import build_parser as build_http_parser  # noqa: E402
from repro.service.observability import METRIC_SPECS  # noqa: E402
from repro.service.verify import (  # noqa: E402
    CHECK_KINDS,
    VERIFY_PAYLOAD_VERSIONS,
    VERIFY_REQUEST_FIELDS,
)


def _cell(text: str) -> str:
    """One markdown table cell: single line, pipes escaped, dash for empty."""
    text = " ".join(str(text).split())
    return text.replace("|", "\\|") or "—"


def _table(header: list[str], rows: list[list[str]]) -> str:
    lines = [
        "| " + " | ".join(header) + " |",
        "| " + " | ".join("---" for _ in header) + " |",
    ]
    for row in rows:
        lines.append("| " + " | ".join(_cell(cell) for cell in row) + " |")
    return "\n".join(lines)


def _metric_rows(endpoint: str) -> list[list[str]]:
    rows = []
    for spec in METRIC_SPECS:
        if spec.endpoint != endpoint:
            continue
        prometheus = f"`{spec.prometheus}`" if spec.prometheus else "—"
        unit = spec.unit or "—"
        rows.append([f"`{spec.key}`", spec.kind, unit, prometheus, spec.help])
    return rows


def render_metrics_table() -> str:
    """The ``GET /v1/metrics`` key table (engine + executor + admission + HTTP)."""
    return _table(
        ["Key", "Kind", "Unit", "Prometheus sample", "Meaning"],
        _metric_rows("/v1/metrics"),
    )


def render_cache_stats_table() -> str:
    """The ``GET /v1/cache/stats`` key table."""
    return _table(
        ["Key", "Kind", "Unit", "Prometheus sample", "Meaning"],
        _metric_rows("/v1/cache/stats"),
    )


def render_prometheus_table() -> str:
    """Every Prometheus-exported sample family, in exposition order."""
    rows = []
    for spec in METRIC_SPECS:
        if spec.kind == "info":
            continue  # folded into repro_service_info below
        if spec.prometheus is None:
            continue
        rows.append([f"`{spec.prometheus}`", spec.kind, f"`{spec.key}`", spec.help])
    rows.append(
        [
            "`repro_service_info`",
            "gauge",
            "—",
            "Always 1; string configuration (executor, overflow, auth) as labels.",
        ]
    )
    return _table(["Sample", "Type", "JSON key", "Meaning"], rows)


def render_cli_table() -> str:
    """The ``python -m repro.service.http`` flag table, from the live parser."""
    parser = build_http_parser()
    rows = []
    for action in parser._actions:  # noqa: SLF001 - argparse has no public walk
        if not action.option_strings or action.dest == "help":
            continue
        flags = ", ".join(f"`{flag}`" for flag in action.option_strings)
        if action.choices:
            value = "\\|".join(str(choice) for choice in action.choices)
        elif action.metavar:
            value = action.metavar
        elif action.const is True or action.nargs == 0:
            value = "—"
        else:
            value = action.dest.upper().replace("-", "_")
        default = "—" if action.default in (None, False) else str(action.default)
        help_text = (action.help or "").replace("%(default)s", str(action.default))
        rows.append([flags, value, default, help_text])
    return _table(["Flag", "Value", "Default", "What it does"], rows)


def render_verify_check_kinds() -> str:
    """The ``POST /v1/verify`` check-kind table, from the live registry."""
    return _table(
        ["Check", "What it proves"],
        [[f"`{kind}`", help_text] for kind, help_text in CHECK_KINDS.items()],
    )


def render_verify_request_fields() -> str:
    """The verify request payload's optional fields, from the field registry."""
    return _table(
        ["Field", "Type", "Default", "Meaning"],
        [
            [f"`{name}`", type_name, f"`{default}`", meaning]
            for name, type_name, default, meaning in VERIFY_REQUEST_FIELDS
        ],
    )


def render_verify_metrics_table() -> str:
    """The ``verify_*`` key family of ``GET /v1/metrics``."""
    return _table(
        ["Key", "Kind", "Unit", "Prometheus sample", "Meaning"],
        [
            row
            for row in _metric_rows("/v1/metrics")
            if row[0].startswith("`verify_")
        ],
    )


def render_verify_payload_versions() -> str:
    """The verify-payload version history, from the live compat registry."""
    return _table(
        ["Version", "Check kinds", "Compatibility"],
        [
            [f"`{version}`", kinds, notes]
            for version, kinds, notes in VERIFY_PAYLOAD_VERSIONS
        ],
    )


#: region name -> (relative file, renderer)
REGIONS: dict[str, tuple[str, callable]] = {
    "metrics-table": ("docs/serving.md", render_metrics_table),
    "cache-stats-table": ("docs/serving.md", render_cache_stats_table),
    "cli-table": ("docs/serving.md", render_cli_table),
    "prometheus-table": ("docs/observability.md", render_prometheus_table),
    "verify-check-kinds": ("docs/verification.md", render_verify_check_kinds),
    "verify-metrics-table": ("docs/verification.md", render_verify_metrics_table),
    "verify-request-fields": ("docs/wire-protocol.md", render_verify_request_fields),
    "verify-payload-versions": ("docs/wire-protocol.md", render_verify_payload_versions),
}


def _markers(name: str) -> tuple[str, str]:
    return (
        f"<!-- generated: {name} (tools/gen_docs_tables.py) -->",
        f"<!-- end generated: {name} -->",
    )


def splice(text: str, name: str, body: str) -> str:
    """Replace the region ``name`` in ``text`` with ``body`` (markers kept)."""
    begin, end = _markers(name)
    start = text.index(begin)
    stop = text.index(end, start)
    return text[: start + len(begin)] + "\n" + body + "\n" + text[stop:]


def process(root: Path, *, check: bool) -> list[str]:
    """Regenerate (or, with ``check``, diff) every region; returns problems."""
    problems: list[str] = []
    by_file: dict[Path, list[str]] = {}
    for name, (relpath, _) in REGIONS.items():
        by_file.setdefault(root / relpath, []).append(name)
    for path, names in sorted(by_file.items()):
        if not path.exists():
            problems.append(f"{path}: missing (expected regions: {', '.join(names)})")
            continue
        text = updated = path.read_text(encoding="utf-8")
        for name in names:
            begin, end = _markers(name)
            if begin not in updated or end not in updated:
                problems.append(f"{path}: missing markers for region {name!r}")
                continue
            updated = splice(updated, name, REGIONS[name][1]())
        if updated == text:
            continue
        if check:
            stale = [
                name
                for name in names
                if _markers(name)[0] in text
                and splice(text, name, REGIONS[name][1]()) != text
            ]
            problems.append(
                f"{path}: generated region(s) out of date: {', '.join(stale)} "
                "(run: PYTHONPATH=src python tools/gen_docs_tables.py)"
            )
        else:
            path.write_text(updated, encoding="utf-8")
            print(f"rewrote {path}")
    return problems


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--check",
        action="store_true",
        help="verify the regions are current instead of rewriting them",
    )
    parser.add_argument(
        "--root",
        type=Path,
        default=REPO_ROOT,
        help="repository root holding docs/ (default: this checkout)",
    )
    args = parser.parse_args(argv)
    problems = process(args.root, check=args.check)
    for problem in problems:
        print(f"FAIL {problem}")
    if not problems:
        print(f"{len(REGIONS)} generated region(s) {'current' if args.check else 'written'}")
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main())
