"""Unit tests for the branch-and-bound and HiGHS MILP backends and the facade."""

import pytest

from repro.errors import InfeasibleError, SolverError, UnboundedError
from repro.ilp.branch_and_bound import solve_branch_and_bound
from repro.ilp.highs import is_available, solve_highs
from repro.ilp.model import Model, SolveStatus
from repro.ilp.solver import available_backends, solve


def knapsack_model():
    """max 10a + 6b + 4c s.t. a+b+c<=2, 5a+4b+3c<=8, binary (optimum: a=c=1, value 14)."""
    model = Model("knapsack", sense="max")
    a = model.add_binary_var("a")
    b = model.add_binary_var("b")
    c = model.add_binary_var("c")
    model.add_constraint(a + b + c <= 2)
    model.add_constraint(5 * a + 4 * b + 3 * c <= 8)
    model.set_objective(10 * a + 6 * b + 4 * c)
    return model, (a, b, c)


def scheduling_like_model():
    """A miniature version of the paper's ILP: integer delays with gaps."""
    model = Model("mini-schedule")
    s1 = model.add_integer_var("s1", lb=0, ub=1000)
    s2 = model.add_integer_var("s2", lb=0, ub=1000)
    s3 = model.add_integer_var("s3", lb=0, ub=1000)
    model.add_constraint(s2 - s1 >= 65)
    model.add_constraint(s3 - s2 >= 65)
    model.add_constraint(s3 - s1 >= 192)
    model.set_objective(s2 + s3)
    return model, (s1, s2, s3)


class TestBranchAndBound:
    def test_knapsack(self):
        model, (a, b, c) = knapsack_model()
        result = solve_branch_and_bound(model)
        assert result.status is SolveStatus.OPTIMAL
        assert result.objective == pytest.approx(14.0)
        assert result.value(a) == 1 and result.value(b) == 0 and result.value(c) == 1

    def test_scheduling_like(self):
        model, (s1, s2, s3) = scheduling_like_model()
        result = solve_branch_and_bound(model)
        assert result.status is SolveStatus.OPTIMAL
        assert result.value(s1) == 0
        assert result.value(s2) == 65
        assert result.value(s3) == 192

    def test_infeasible(self):
        model = Model()
        x = model.add_integer_var("x", lb=0, ub=3)
        model.add_constraint(x >= 5)
        result = solve_branch_and_bound(model)
        assert result.status is SolveStatus.INFEASIBLE

    def test_fractional_lp_integer_rounding(self):
        # LP optimum is fractional; MILP optimum differs.
        model = Model(sense="max")
        x = model.add_integer_var("x", lb=0)
        y = model.add_integer_var("y", lb=0)
        model.add_constraint(2 * x + 3 * y <= 7)
        model.set_objective(x + 2 * y)
        result = solve_branch_and_bound(model)
        assert result.status is SolveStatus.OPTIMAL
        assert result.objective == pytest.approx(4.0)

    def test_unbounded(self):
        model = Model(sense="max")
        x = model.add_integer_var("x", lb=0)
        model.set_objective(x + 0)
        result = solve_branch_and_bound(model)
        assert result.status is SolveStatus.UNBOUNDED

    def test_mixed_integer_continuous(self):
        model = Model()
        x = model.add_integer_var("x", lb=0, ub=10)
        y = model.add_var("y", lb=0.0, ub=10.0)
        model.add_constraint(x + y >= 3.5)
        model.set_objective(2 * x + y)
        result = solve_branch_and_bound(model)
        assert result.status is SolveStatus.OPTIMAL
        assert result.objective == pytest.approx(3.5)
        assert result.value(x) == 0


@pytest.mark.skipif(not is_available(), reason="SciPy HiGHS not available")
class TestHighs:
    def test_knapsack(self):
        model, (a, b, c) = knapsack_model()
        result = solve_highs(model)
        assert result.status is SolveStatus.OPTIMAL
        assert result.objective == pytest.approx(14.0)

    def test_infeasible(self):
        model = Model()
        x = model.add_integer_var("x", lb=0, ub=3)
        model.add_constraint(x >= 5)
        assert solve_highs(model).status is SolveStatus.INFEASIBLE

    def test_scheduling_like(self):
        model, (s1, s2, s3) = scheduling_like_model()
        result = solve_highs(model)
        assert result.status is SolveStatus.OPTIMAL
        assert result.objective == pytest.approx(257.0)


class TestFacade:
    def test_available_backends_contains_python(self):
        assert "python" in available_backends()

    def test_auto_backend(self):
        model, _ = knapsack_model()
        result = solve(model, backend="auto")
        assert result.status is SolveStatus.OPTIMAL

    def test_unknown_backend(self):
        model, _ = knapsack_model()
        with pytest.raises(SolverError):
            solve(model, backend="gurobi")

    def test_raise_on_infeasible(self):
        model = Model()
        x = model.add_integer_var("x", lb=0, ub=3)
        model.add_constraint(x >= 5)
        with pytest.raises(InfeasibleError):
            solve(model, backend="python", raise_on_failure=True)

    def test_raise_on_unbounded(self):
        model = Model(sense="max")
        x = model.add_integer_var("x", lb=0)
        model.set_objective(x + 0)
        with pytest.raises(UnboundedError):
            solve(model, backend="python", raise_on_failure=True)

    def test_backends_agree(self):
        model, _ = scheduling_like_model()
        python_result = solve(model, backend="python")
        assert python_result.status is SolveStatus.OPTIMAL
        if is_available():
            highs_result = solve(model, backend="highs")
            assert highs_result.objective == pytest.approx(python_result.objective)


class TestNodeOrdering:
    def test_equal_priority_nodes_stay_out_of_array_comparison(self):
        # Regression: _Node used to include its numpy bound arrays in the
        # dataclass ordering, so two nodes tying on (bound, tiebreak) made
        # heapq compare arrays elementwise and raise. The arrays must be
        # excluded from comparisons entirely.
        import heapq

        import numpy as np

        from repro.ilp.branch_and_bound import _Node

        lb, ub = np.zeros(3), np.ones(3)
        a = _Node(bound=1.0, tiebreak=7, lb=lb, ub=ub)
        b = _Node(bound=1.0, tiebreak=7, lb=lb + 1.0, ub=ub + 1.0)
        assert not (a < b) and not (b < a)  # ties resolve without the arrays
        heap = []
        heapq.heappush(heap, _Node(bound=1.0, tiebreak=0, lb=lb.copy(), ub=ub.copy()))
        heapq.heappush(heap, _Node(bound=1.0, tiebreak=1, lb=lb.copy(), ub=ub.copy()))
        assert heapq.heappop(heap).tiebreak == 0


class TestWarmStarts:
    def test_optimal_hint_returned_as_incumbent(self):
        from repro.ilp.model import WarmStart

        model, (a, b, c) = knapsack_model()
        result = solve_branch_and_bound(
            model, warm_start=WarmStart(values={"a": 1.0, "b": 0.0, "c": 1.0})
        )
        assert result.status is SolveStatus.OPTIMAL
        assert result.objective == pytest.approx(14.0)
        assert result.value(a) == 1 and result.value(b) == 0 and result.value(c) == 1
        assert result.warm_start == "incumbent"  # nothing strictly better exists

    def test_suboptimal_hint_is_seeded_then_beaten(self):
        from repro.ilp.model import WarmStart

        model, (a, b, c) = knapsack_model()
        result = solve_branch_and_bound(
            model, warm_start=WarmStart(values={a: 0.0, b: 1.0, c: 0.0})
        )
        assert result.status is SolveStatus.OPTIMAL
        assert result.objective == pytest.approx(14.0)
        assert result.warm_start == "seeded"

    def test_infeasible_hint_is_rejected(self):
        from repro.ilp.model import WarmStart

        model, _ = knapsack_model()
        result = solve_branch_and_bound(
            model, warm_start=WarmStart(values={"a": 1.0, "b": 1.0, "c": 1.0})
        )
        assert result.status is SolveStatus.OPTIMAL
        assert result.objective == pytest.approx(14.0)
        assert result.warm_start == "rejected"

    def test_incomplete_hint_is_rejected(self):
        from repro.ilp.model import WarmStart

        model, _ = knapsack_model()
        result = solve_branch_and_bound(model, warm_start=WarmStart(values={"a": 1.0}))
        assert result.warm_start == "rejected"
        assert result.objective == pytest.approx(14.0)

    def test_counters_present(self):
        model, _ = scheduling_like_model()
        result = solve_branch_and_bound(model)
        assert result.nodes >= 1
        assert result.pruned >= 0
        assert result.warm_start == "none"


class TestCancellation:
    def test_preset_cancel_event_aborts_before_first_node(self):
        import threading

        from repro.errors import SolverCancelled

        model, _ = scheduling_like_model()
        cancel = threading.Event()
        cancel.set()
        with pytest.raises(SolverCancelled):
            solve_branch_and_bound(model, cancel=cancel)


class TestBackendResolution:
    def test_env_var_drives_auto(self, monkeypatch):
        from repro.ilp.solver import BACKEND_ENV_VAR, resolve_backend

        monkeypatch.setenv(BACKEND_ENV_VAR, "python")
        assert resolve_backend("auto") == "python"

    def test_explicit_backend_beats_env(self, monkeypatch):
        from repro.ilp.solver import BACKEND_ENV_VAR, resolve_backend

        monkeypatch.setenv(BACKEND_ENV_VAR, "python")
        assert resolve_backend("highs") == "highs"

    def test_unknown_env_value_raises(self, monkeypatch):
        from repro.ilp.solver import BACKEND_ENV_VAR, resolve_backend

        monkeypatch.setenv(BACKEND_ENV_VAR, "gurobi")
        with pytest.raises(SolverError):
            resolve_backend("auto")

    def test_race_listed_only_with_highs(self):
        backends = available_backends()
        assert ("race" in backends) == is_available()


class TestRacing:
    def test_race_solves_correctly(self):
        from repro.ilp.solver import solve_racing

        model, _ = knapsack_model()
        result = solve_racing(model)
        assert result.status is SolveStatus.OPTIMAL
        assert result.objective == pytest.approx(14.0)
        if is_available():
            assert result.backend.startswith("race:")
        else:
            assert result.backend == "python"  # single-contestant degradation

    def test_race_agrees_on_infeasible(self):
        from repro.ilp.solver import solve_racing

        model = Model()
        x = model.add_integer_var("x", lb=0, ub=3)
        model.add_constraint(x >= 5)
        assert solve_racing(model).status is SolveStatus.INFEASIBLE

    def test_race_with_warm_start(self):
        from repro.ilp.model import WarmStart
        from repro.ilp.solver import solve_racing

        model, _ = knapsack_model()
        result = solve_racing(
            model, warm_start=WarmStart(values={"a": 1.0, "b": 0.0, "c": 1.0})
        )
        assert result.status is SolveStatus.OPTIMAL
        assert result.objective == pytest.approx(14.0)


class TestCompound:
    def _models(self):
        first, _ = scheduling_like_model()
        second, _ = knapsack_model()
        # Compound models must share a sense; flip the knapsack to min of the
        # negated objective so the pair is mergeable.
        negated = Model("neg-knapsack")
        a = negated.add_binary_var("a")
        b = negated.add_binary_var("b")
        c = negated.add_binary_var("c")
        negated.add_constraint(a + b + c <= 2)
        negated.add_constraint(5 * a + 4 * b + 3 * c <= 8)
        negated.set_objective(-10 * a - 6 * b - 4 * c)
        return first, negated

    def test_merge_solve_split_matches_solo(self):
        from repro.ilp.compound import merge_models, solve_compound

        first, second = self._models()
        compound, blocks = merge_models([first, second])
        assert compound.num_variables == first.num_variables + second.num_variables
        combined, per_block = solve_compound(compound, blocks, backend="python")
        assert combined.status is SolveStatus.OPTIMAL
        solo = [solve(first, backend="python"), solve(second, backend="python")]
        assert combined.objective == pytest.approx(sum(r.objective for r in solo))
        for block_result, solo_result in zip(per_block, solo):
            assert block_result.objective == pytest.approx(solo_result.objective)

    def test_split_block_restores_names(self):
        from repro.ilp.compound import merge_models, split_block

        first, second = self._models()
        compound, blocks = merge_models([first, second])
        sub = split_block(compound, blocks[0])
        assert [var.name for var in sub.variables] == [var.name for var in first.variables]
        assert sub.num_constraints == first.num_constraints

    def test_mixed_sense_rejected(self):
        from repro.errors import ILPError
        from repro.ilp.compound import merge_models

        first, _ = scheduling_like_model()
        second, _ = knapsack_model()  # max-sense
        with pytest.raises(ILPError):
            merge_models([first, second])

    def test_cross_block_coupling_rejected(self):
        from repro.errors import ILPError
        from repro.ilp.compound import merge_models, solve_compound

        first, second = self._models()
        compound, blocks = merge_models([first, second])
        x0 = compound.variables[0]
        y0 = blocks[1].variables[0]
        compound.add_constraint(x0 + y0 >= 0)
        with pytest.raises(ILPError):
            solve_compound(compound, blocks)

    def test_warm_start_count_mismatch_rejected(self):
        from repro.errors import ILPError
        from repro.ilp.compound import merge_models, solve_compound

        first, second = self._models()
        compound, blocks = merge_models([first, second])
        with pytest.raises(ILPError):
            solve_compound(compound, blocks, warm_starts=[None])

    def test_infeasible_block_poisons_combined_status(self):
        from repro.ilp.compound import merge_models, solve_compound

        feasible, _ = scheduling_like_model()
        infeasible = Model("impossible")
        x = infeasible.add_integer_var("x", lb=0, ub=3)
        infeasible.add_constraint(x >= 5)
        infeasible.set_objective(x + 0)
        compound, blocks = merge_models([feasible, infeasible])
        combined, per_block = solve_compound(compound, blocks, backend="python")
        assert combined.status is SolveStatus.INFEASIBLE
        assert combined.objective is None
        assert per_block[0].status is SolveStatus.OPTIMAL
        assert per_block[1].status is SolveStatus.INFEASIBLE
