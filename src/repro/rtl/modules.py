"""Verilog module templates: SRAM blocks, line buffers, window registers, PEs.

The generated hardware follows the structure of Fig. 1:

* one behavioral SRAM macro model (``imagen_sram``) parameterised by depth and
  port count;
* one line-buffer module per producer stage, instantiating its SRAM blocks and
  exposing one write port (for the producer) and one read column per consumer;
* one shift-register window module per consumer edge, turning the column
  stream into a full stencil window;
* one compute module per stage (pure combinational translation of the DSL
  expression, registered at the output);
* a top-level module with the start-cycle controller that sequences the
  pipeline according to the schedule.
"""

from __future__ import annotations

from repro.core.schedule import PipelineSchedule
from repro.dsl import ast
from repro.ir.dag import Edge, Stage
from repro.memory.linebuffer import LineBufferConfig
from repro.rtl.expressions import (
    DATA_WIDTH,
    FRACTION_BITS,
    sanitize,
    translate,
    uses_isqrt,
    window_wire,
)


def emit_header(schedule: PipelineSchedule) -> str:
    dag = schedule.dag
    return "\n".join(
        [
            "// ------------------------------------------------------------------",
            f"// Auto-generated line-buffered accelerator for pipeline '{dag.name}'",
            f"// generator: {schedule.generator}, image {schedule.image_width}x{schedule.image_height}",
            f"// memory: {schedule.memory_spec.name} ({schedule.memory_spec.block_bits} bits, "
            f"{schedule.memory_spec.ports} ports)",
            "// ------------------------------------------------------------------",
            "`timescale 1ns/1ps",
            "",
        ]
    )


def emit_sram_model(ports: int) -> str:
    """Behavioral model of the SRAM macro assumed by the memory specification."""
    lines = [
        "module imagen_sram #(",
        "    parameter DEPTH = 1024,",
        "    parameter WIDTH = 16,",
        f"    parameter PORTS = {ports}",
        ") (",
        "    input  wire                     clk,",
        "    input  wire                     we0,",
        "    input  wire [$clog2(DEPTH)-1:0] addr0,",
        "    input  wire [WIDTH-1:0]         wdata0,",
        "    output reg  [WIDTH-1:0]         rdata0,",
        "    input  wire                     we1,",
        "    input  wire [$clog2(DEPTH)-1:0] addr1,",
        "    input  wire [WIDTH-1:0]         wdata1,",
        "    output reg  [WIDTH-1:0]         rdata1",
        ");",
        "    reg [WIDTH-1:0] mem [0:DEPTH-1];",
        "    always @(posedge clk) begin",
        "        if (we0) mem[addr0] <= wdata0;",
        "        rdata0 <= mem[addr0];",
        "    end",
        "    generate if (PORTS > 1) begin : g_port1",
        "        always @(posedge clk) begin",
        "            if (we1) mem[addr1] <= wdata1;",
        "            rdata1 <= mem[addr1];",
        "        end",
        "    end endgenerate",
        "endmodule",
        "",
    ]
    return "\n".join(lines)


def line_buffer_module_name(producer: str) -> str:
    return f"linebuffer_{sanitize(producer)}"


def emit_line_buffer(config: LineBufferConfig, readers: list[Edge]) -> str:
    """Line-buffer module: write port for the producer, one read column per consumer."""
    name = line_buffer_module_name(config.producer)
    width = config.image_width
    lines = max(1, config.lines)
    pixel_bits = config.spec.pixel_bits

    ports = [
        "    input  wire                   clk,",
        "    input  wire                   rst,",
        "    input  wire                   wr_en,",
        f"    input  wire [{_addr_bits(width)-1}:0] wr_col,",
        f"    input  wire [{_addr_bits(lines)-1}:0] wr_line,",
        f"    input  wire [{pixel_bits-1}:0]        wr_data,",
    ]
    for edge in readers:
        reader = sanitize(edge.consumer)
        height = edge.window.height
        ports.extend(
            [
                f"    input  wire                   rd_en_{reader},",
                f"    input  wire [{_addr_bits(width)-1}:0] rd_col_{reader},",
                f"    input  wire [{_addr_bits(lines)-1}:0] rd_line_{reader},",
                f"    output wire [{height * pixel_bits - 1}:0] rd_column_{reader},",
            ]
        )
    ports[-1] = ports[-1].rstrip(",")

    body = [
        f"module {name} (",
        *ports,
        ");",
        f"    // {lines} line slot(s) of {width} pixels, {config.num_blocks} memory block(s),",
        f"    // coalescing factor {config.coalesce_factor}, style {config.style}.",
        f"    reg [{pixel_bits-1}:0] storage [0:{lines * width - 1}];",
        "    always @(posedge clk) begin",
        "        if (wr_en) begin",
        f"            storage[wr_line * {width} + wr_col] <= wr_data;",
        "        end",
        "    end",
    ]
    for edge in readers:
        reader = sanitize(edge.consumer)
        height = edge.window.height
        for k in range(height):
            body.append(
                f"    assign rd_column_{reader}[{(k + 1) * pixel_bits - 1}:{k * pixel_bits}] = "
                f"storage[((rd_line_{reader} + {k}) % {lines}) * {width} + rd_col_{reader}];"
            )
    body.extend(["endmodule", ""])
    return "\n".join(body)


def window_module_name(producer: str, consumer: str) -> str:
    return f"window_{sanitize(producer)}_to_{sanitize(consumer)}"


def emit_window(edge: Edge, pixel_bits: int) -> str:
    """Shift-register array turning a column stream into a full stencil window."""
    name = window_module_name(edge.producer, edge.consumer)
    height = edge.window.height
    width = edge.window.width
    body = [
        f"module {name} (",
        "    input  wire                   clk,",
        "    input  wire                   shift,",
        f"    input  wire [{height * pixel_bits - 1}:0] column_in,",
        f"    output wire [{height * width * pixel_bits - 1}:0] window_out",
        ");",
        f"    reg [{pixel_bits-1}:0] cells [0:{height - 1}][0:{width - 1}];",
        "    integer r, c;",
        "    always @(posedge clk) begin",
        "        if (shift) begin",
        f"            for (r = 0; r < {height}; r = r + 1) begin",
        f"                for (c = 0; c < {width - 1}; c = c + 1) begin",
        "                    cells[r][c] <= cells[r][c + 1];",
        "                end",
        f"                cells[r][{width - 1}] <= column_in[r * {pixel_bits} +: {pixel_bits}];",
        "            end",
        "        end",
        "    end",
        "    genvar gr, gc;",
        "    generate",
        f"        for (gr = 0; gr < {height}; gr = gr + 1) begin : g_rows",
        f"            for (gc = 0; gc < {width}; gc = gc + 1) begin : g_cols",
        f"                assign window_out[(gr * {width} + gc) * {pixel_bits} +: {pixel_bits}] = cells[gr][gc];",
        "            end",
        "        end",
        "    endgenerate",
        "endmodule",
        "",
    ]
    return "\n".join(body)


def stage_module_name(stage: str) -> str:
    return f"stage_{sanitize(stage)}"


def emit_stage(stage: Stage, in_edges: list[Edge], pixel_bits: int) -> str:
    """Compute module for one stage: stencil windows in, one pixel out."""
    name = stage_module_name(stage.name)
    ports = [
        "    input  wire        clk,",
        "    input  wire        enable,",
    ]
    for edge in in_edges:
        producer = sanitize(edge.producer)
        size = edge.window.height * edge.window.width * pixel_bits
        ports.append(f"    input  wire [{size - 1}:0] window_{producer},")
    ports.append(f"    output reg  [{pixel_bits - 1}:0] pixel_out,")
    ports.append("    output reg         valid_out")
    body = [f"module {name} (", *ports, ");"]
    if stage.expression is not None and uses_isqrt(stage.expression):
        body.append(emit_isqrt(pixel_bits))

    # Unpack window registers into named fixed-point wires.
    for edge in in_edges:
        producer = sanitize(edge.producer)
        window = edge.window
        for row, dy in enumerate(range(window.min_dy, window.max_dy + 1)):
            for col, dx in enumerate(range(window.min_dx, window.max_dx + 1)):
                wire = window_wire(edge.producer, dx, dy)
                index = row * window.width + col
                body.append(
                    f"    wire signed [{DATA_WIDTH-1}:0] {wire} = "
                    f"$signed({{1'b0, window_{producer}[{index} * {pixel_bits} +: {pixel_bits}]}}) <<< {FRACTION_BITS};"
                )

    if stage.expression is not None:
        expression = translate(stage.expression)
    elif in_edges:
        expression = window_wire(in_edges[0].producer, 0, 0)
    else:
        expression = "0"
    body.extend(
        [
            f"    wire signed [{DATA_WIDTH-1}:0] result = {expression};",
            "    always @(posedge clk) begin",
            "        if (enable) begin",
            f"            pixel_out <= result[{FRACTION_BITS + pixel_bits - 1}:{FRACTION_BITS}];",
            "            valid_out <= 1'b1;",
            "        end else begin",
            "            valid_out <= 1'b0;",
            "        end",
            "    end",
            "endmodule",
            "",
        ]
    )
    return "\n".join(body)


def emit_isqrt(pixel_bits: int) -> str:
    """Integer square-root helper used when a stage calls sqrt()."""
    return "\n".join(
        [
            f"function [{DATA_WIDTH-1}:0] isqrt;",
            f"    input [{DATA_WIDTH-1}:0] value;",
            f"    reg [{DATA_WIDTH-1}:0] rem, root, test;",
            "    integer i;",
            "    begin",
            "        rem = value; root = 0;",
            f"        for (i = 0; i < {DATA_WIDTH // 2}; i = i + 1) begin",
            "            root = root << 1;",
            f"            test = (root << 1) + 1;",
            f"            if (rem >= (test << ({DATA_WIDTH - 2} - 2 * i))) begin",
            f"                rem = rem - (test << ({DATA_WIDTH - 2} - 2 * i));",
            "                root = root + 1;",
            "            end",
            "        end",
            "        isqrt = root;",
            "    end",
            "endfunction",
        ]
    )


def _addr_bits(count: int) -> int:
    bits = 1
    while (1 << bits) < max(2, count):
        bits += 1
    return bits
