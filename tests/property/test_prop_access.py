"""Property-based tests for access-set arithmetic and buffer sizing."""

from hypothesis import given, settings, strategies as st

from repro.core.access import (
    access_set,
    minimal_slot_count,
    required_line_slots,
    separation_requirement,
    sets_disjoint,
)

widths = st.integers(8, 256)
heights = st.integers(1, 8)


class TestSeparationProperties:
    @settings(max_examples=200, deadline=None)
    @given(widths, heights, st.integers(0, 3000), st.integers(0, 4 * 256))
    def test_separation_gap_guarantees_disjoint_sets(self, width, height, t_offset, extra):
        """Eq. 12: a gap of SH*W (or more) keeps the trailing stage's lines
        strictly behind the leading stage's lines at every cycle."""
        gap = separation_requirement(height, width) + extra
        leading_start = 0
        trailing_start = gap
        t = trailing_start + t_offset
        assert sets_disjoint(t, trailing_start, height, leading_start, 1, width)

    @settings(max_examples=200, deadline=None)
    @given(widths, st.integers(2, 8))
    def test_gap_one_line_short_eventually_conflicts(self, width, height):
        gap = separation_requirement(height, width) - width
        conflict = any(
            not sets_disjoint(t, gap, height, 0, 1, width) for t in range(gap, gap + 3 * width)
        )
        assert conflict

    @settings(max_examples=200, deadline=None)
    @given(widths, heights, st.integers(0, 5000), st.integers(0, 5000))
    def test_access_set_size_is_stencil_height(self, width, height, start, offset):
        lines = access_set(start + offset, start, width, height)
        assert len(lines) == height
        assert lines.start >= 0


class TestSizingProperties:
    @settings(max_examples=200, deadline=None)
    @given(widths, st.integers(0, 5000), st.integers(0, 500))
    def test_required_slots_monotonic_in_delay(self, width, delay, extra):
        assert required_line_slots(delay + extra, width) >= required_line_slots(delay, width)

    @settings(max_examples=200, deadline=None)
    @given(widths, st.integers(1, 5000))
    def test_required_slots_cover_the_delay(self, width, delay):
        slots = required_line_slots(delay, width)
        assert slots * width >= delay
        assert (slots - 1) * width <= delay

    @settings(max_examples=100, deadline=None)
    @given(widths, st.integers(1, 2), st.integers(1, 6))
    def test_minimal_slot_count_at_least_capacity(self, width, ports, height):
        delay = separation_requirement(height, width)
        slots = minimal_slot_count(width, ports, [(delay, height)])
        assert slots >= required_line_slots(delay, width)
        assert slots <= required_line_slots(delay, width) + 4
