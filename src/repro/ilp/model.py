"""The ILP model object: variables, constraints, objective, and solutions."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Mapping

from repro.errors import ILPError
from repro.ilp.expr import LinExpr, Variable


class SolveStatus(enum.Enum):
    """Terminal status of a solve call."""

    OPTIMAL = "optimal"
    INFEASIBLE = "infeasible"
    UNBOUNDED = "unbounded"
    ERROR = "error"


@dataclass(frozen=True)
class Constraint:
    """A linear constraint ``expr (<=|>=|==) 0`` in normalised form.

    Normalised form keeps all variable terms on the left and folds all
    constants into ``rhs`` so that backends translate it mechanically:
    ``sum(coeffs) sense rhs``.
    """

    expr: LinExpr
    sense: str  # '<=', '>=', '=='
    rhs: float
    name: str = ""

    @staticmethod
    def from_comparison(lhs: LinExpr, sense: str, rhs: LinExpr) -> "Constraint":
        if sense not in ("<=", ">=", "=="):
            raise ILPError(f"Unsupported constraint sense {sense!r}")
        diff = lhs - rhs
        constant = diff.constant
        diff = LinExpr(diff.coeffs, 0.0)
        return Constraint(expr=diff, sense=sense, rhs=-constant)

    def named(self, name: str) -> "Constraint":
        return Constraint(self.expr, self.sense, self.rhs, name)

    def satisfied_by(self, values: Mapping[Variable, float], tol: float = 1e-6) -> bool:
        value = self.expr.evaluate(values)
        if self.sense == "<=":
            return value <= self.rhs + tol
        if self.sense == ">=":
            return value >= self.rhs - tol
        return abs(value - self.rhs) <= tol

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        label = f"[{self.name}] " if self.name else ""
        return f"{label}{self.expr!r} {self.sense} {self.rhs:g}"


@dataclass(frozen=True)
class WarmStart:
    """An incumbent assignment handed to a solver before the search starts.

    ``values`` may be keyed by :class:`~repro.ilp.expr.Variable` or by
    variable *name* — name keys let a caller seed a model it did not build
    itself (e.g. a block of a compound model).  ``objective`` is optional; a
    solver recomputes it from the model when absent.  An infeasible or
    incomplete warm start is *rejected*, never an error: the solve proceeds
    cold and reports ``warm_start="rejected"`` on its result.
    """

    values: Mapping[Variable | str, float]
    objective: float | None = None


@dataclass
class SolveResult:
    """Outcome of solving a model."""

    status: SolveStatus
    objective: float | None = None
    values: dict[Variable, float] = field(default_factory=dict)
    backend: str = ""
    iterations: int = 0
    message: str = ""
    #: Branch-and-bound nodes whose LP relaxation was solved (0 for backends
    #: that do not expose a node count).
    nodes: int = 0
    #: Nodes discarded by the incumbent bound without an LP solve.
    pruned: int = 0
    #: Warm-start disposition: ``"none"`` (no hint offered), ``"rejected"``
    #: (hint infeasible/incomplete), ``"seeded"`` (hint accepted, a strictly
    #: better solution was found anyway) or ``"incumbent"`` (hint accepted and
    #: returned as the proven optimum).
    warm_start: str = "none"

    @property
    def is_optimal(self) -> bool:
        return self.status is SolveStatus.OPTIMAL

    def value(self, var: Variable) -> float:
        if var not in self.values:
            raise ILPError(f"No solution value for variable {var.name!r}")
        return self.values[var]

    def value_by_name(self, name: str) -> float:
        for var, value in self.values.items():
            if var.name == name:
                return value
        raise ILPError(f"No solution value for variable named {name!r}")


class Model:
    """A mixed-integer linear program.

    The model is solver-agnostic; see :func:`repro.ilp.solver.solve`.
    """

    def __init__(self, name: str = "model", sense: str = "min") -> None:
        if sense not in ("min", "max"):
            raise ILPError("Objective sense must be 'min' or 'max'")
        self.name = name
        self.sense = sense
        self.variables: list[Variable] = []
        self.constraints: list[Constraint] = []
        self.objective: LinExpr = LinExpr()
        self._names: set[str] = set()

    # -------------------------------------------------------------- building
    def add_var(
        self,
        name: str,
        *,
        lb: float | None = 0.0,
        ub: float | None = None,
        integer: bool = False,
    ) -> Variable:
        """Create a decision variable.  ``lb=None`` means unbounded below."""
        if name in self._names:
            raise ILPError(f"Duplicate variable name {name!r}")
        if lb is not None and ub is not None and lb > ub:
            raise ILPError(f"Variable {name!r} has lb {lb} > ub {ub}")
        var = Variable(name=name, lb=lb, ub=ub, integer=integer, index=len(self.variables))
        self.variables.append(var)
        self._names.add(name)
        return var

    def add_integer_var(self, name: str, *, lb: float | None = 0.0, ub: float | None = None) -> Variable:
        return self.add_var(name, lb=lb, ub=ub, integer=True)

    def add_binary_var(self, name: str) -> Variable:
        return self.add_var(name, lb=0.0, ub=1.0, integer=True)

    def add_constraint(self, constraint: Constraint, name: str = "") -> Constraint:
        if not isinstance(constraint, Constraint):
            raise ILPError(
                "add_constraint expects a Constraint (build one with <=, >= or .eq())"
            )
        if name:
            constraint = constraint.named(name)
        for var in constraint.expr.variables():
            if var.index >= len(self.variables) or self.variables[var.index] is not var:
                raise ILPError(
                    f"Constraint {name or constraint!r} uses a variable not owned by this model"
                )
        self.constraints.append(constraint)
        return constraint

    def set_objective(self, expr: LinExpr | Variable, sense: str | None = None) -> None:
        if isinstance(expr, Variable):
            expr = expr + 0.0
        if not isinstance(expr, LinExpr):
            raise ILPError("Objective must be a linear expression")
        if sense is not None:
            if sense not in ("min", "max"):
                raise ILPError("Objective sense must be 'min' or 'max'")
            self.sense = sense
        self.objective = expr

    # --------------------------------------------------------------- queries
    @property
    def num_variables(self) -> int:
        return len(self.variables)

    @property
    def num_constraints(self) -> int:
        return len(self.constraints)

    @property
    def num_integer_variables(self) -> int:
        return sum(1 for v in self.variables if v.integer)

    def is_feasible(self, values: Mapping[Variable, float], tol: float = 1e-6) -> bool:
        """Check a full assignment against bounds, integrality and constraints."""
        for var in self.variables:
            if var not in values:
                return False
            value = values[var]
            if var.lb is not None and value < var.lb - tol:
                return False
            if var.ub is not None and value > var.ub + tol:
                return False
            if var.integer and abs(value - round(value)) > tol:
                return False
        return all(c.satisfied_by(values, tol) for c in self.constraints)

    def objective_value(self, values: Mapping[Variable, float]) -> float:
        return self.objective.evaluate(values)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Model({self.name!r}, vars={self.num_variables}, "
            f"int={self.num_integer_variables}, cons={self.num_constraints})"
        )
