"""Fig. 8: SRAM size (a) and memory power (b) comparison on 320p images.

The paper's headline result: across the Table-3 algorithms at 480x320,
ImaGen-generated designs use less on-chip memory than FixyNN and Darkroom and
less power than every baseline, and line coalescing (Ours+LC) extends the
memory savings further.  Absolute KB/mW values depend on the analytic SRAM
model; the assertions below check the orderings / sign of every headline
comparison, and EXPERIMENTS.md records the measured ratios next to the
paper's.
"""

from __future__ import annotations

import pytest

from bench_helpers import RES_320P, evaluate_all, print_metric_table, savings


@pytest.fixture(scope="module")
def results_320p():
    return evaluate_all(*RES_320P)


def test_fig8a_sram_size_320p(benchmark, results_320p):
    table = benchmark.pedantic(
        lambda: print_metric_table(
            "Fig 8a: SRAM size at 320p (KB, block-granular allocation)",
            results_320p,
            lambda report: report.sram_kbytes,
            "KB",
        ),
        rounds=1,
        iterations=1,
    )

    print(
        f"\n  Ours vs FixyNN:   {savings(table, 'ours', 'fixynn'):+.1f}% (paper: +28.0%)\n"
        f"  Ours vs Darkroom: {savings(table, 'ours', 'darkroom'):+.1f}% (paper: +10.2%)\n"
        f"  Ours vs SODA:     {savings(table, 'ours', 'soda'):+.1f}% (paper: -31.0%, i.e. Ours larger)\n"
        f"  Ours+LC vs FixyNN:   {savings(table, 'ours+lc', 'fixynn'):+.1f}% (paper: +86.0%)\n"
        f"  Ours+LC vs Darkroom: {savings(table, 'ours+lc', 'darkroom'):+.1f}% (paper: +56.8%)\n"
        f"  Ours+LC vs SODA:     {savings(table, 'ours+lc', 'soda'):+.1f}% (paper: +28.5%)"
    )

    average = table["average"]
    # Orderings of Fig. 8a.
    assert average["fixynn"] > average["darkroom"] > average["ours"]
    assert average["ours+lc"] < average["ours"]
    assert average["ours+lc"] < average["darkroom"]
    # Per-algorithm: multi-consumer algorithms benefit the most vs Darkroom.
    assert table["xcorr-m"]["darkroom"] > 2 * table["xcorr-m"]["ours"]


def test_fig8b_memory_power_320p(benchmark, results_320p):
    table = benchmark.pedantic(
        lambda: print_metric_table(
            "Fig 8b: memory power at 320p (mW)",
            results_320p,
            lambda report: report.memory_power_mw,
            "mW",
        ),
        rounds=1,
        iterations=1,
    )

    print(
        f"\n  Ours vs FixyNN:   {savings(table, 'ours', 'fixynn'):+.1f}% (paper: +7.8%)\n"
        f"  Ours vs Darkroom: {savings(table, 'ours', 'darkroom'):+.1f}% (paper: +13.8%)\n"
        f"  Ours vs SODA:     {savings(table, 'ours', 'soda'):+.1f}% (paper: +56.0%)"
    )

    average = table["average"]
    # ImaGen consumes the least power on average; FixyNN and Darkroom more.
    assert average["ours"] < average["fixynn"]
    assert average["ours"] < average["darkroom"]
    assert average["ours"] < average["soda"]
    # Line coalescing does not change power much (paper Sec. 8.4).
    assert abs(average["ours+lc"] - average["ours"]) / average["ours"] < 0.25
    # SODA's FIFO splitting hurts most on the tall-stencil / multi-consumer cases.
    assert table["xcorr-m"]["soda"] > table["xcorr-m"]["ours"]
    assert table["canny-m"]["soda"] > 0
