"""Cycle-level simulator for line-buffered pipeline schedules.

The simulator plays the role of the paper's "cycle-level simulator" (Sec. 7):
it walks the schedule cycle by cycle, tracks which physical line-buffer
blocks every stage touches, and

* verifies the three no-stall requirements of Sec. 5.1 —
  R1 (causality), R2 (no premature eviction), R3 (no port over-subscription);
* counts memory accesses per block, which the power model combines with
  per-access energies;
* measures the steady-state throughput (pixels per cycle) of the output
  stage.

Timing convention (element granularity)
---------------------------------------
A stage with start cycle ``S`` processes pixel ``n = t - S`` at cycle ``t``:
row ``n // W``, column ``n % W``.  A consumer reading an ``SH``-line window
reads one pixel from each of the ``SH`` lines ``row .. row + SH - 1`` of its
producer's buffer each cycle.  Reads from several consumers that target the
same (line, column) address are served by one physical access (broadcast),
which is what makes Darkroom's pattern-identical relay reads free.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.schedule import PipelineSchedule
from repro.errors import SimulationError


@dataclass
class BufferStats:
    """Access accounting for one producer's line buffer."""

    producer: str
    writes: int = 0
    reads: int = 0
    peak_block_accesses: int = 0
    accesses_per_block: dict[int, int] = field(default_factory=dict)

    @property
    def total_accesses(self) -> int:
        return self.writes + self.reads


@dataclass
class SimulationReport:
    """Outcome of a cycle-level simulation."""

    schedule: PipelineSchedule
    cycles_simulated: int
    rows_simulated: int
    output_pixels: int
    steady_state_throughput: float
    buffer_stats: dict[str, BufferStats]
    violations: list[str] = field(default_factory=list)
    #: structured identities of every violated rule: (rule, producer, consumer)
    #: with consumer ``None`` for the producer-level R3.  Unlike ``violations``
    #: (bounded by ``max_violations``), this set is complete.
    violation_keys: set[tuple[str, str, str | None]] = field(default_factory=set)

    @property
    def ok(self) -> bool:
        return not self.violations

    @property
    def total_reads(self) -> int:
        return sum(stats.reads for stats in self.buffer_stats.values())

    @property
    def total_writes(self) -> int:
        return sum(stats.writes for stats in self.buffer_stats.values())


def frame_buffer_violations(
    schedule: PipelineSchedule,
) -> list[tuple[str, str, str | None, str]]:
    """Frame-buffer legality: ``(rule, producer, consumer, message)`` tuples.

    Frame buffers rotate through ``depth + 1`` banked slots, so they can never
    oversubscribe ports; what *can* go wrong is a schedule whose frame buffers
    do not cover the DAG's temporal reads (a hand-built or deserialized
    schedule with a missing, too-shallow, or wrong-geometry buffer).  Both the
    event walk and the reserved-table checker report these identically under
    rule ``"FB"`` — the temporal analogue of R2: a past frame a consumer still
    needs would have been evicted.
    """
    found: list[tuple[str, str, str | None, str]] = []
    depths = schedule.dag.frame_depths()
    for producer, needed in depths.items():
        config = schedule.frame_buffers.get(producer)
        if config is None:
            found.append(
                (
                    "FB",
                    producer,
                    None,
                    f"FB: consumers of {producer} read {needed} past frame(s) "
                    "but the schedule has no frame buffer for it",
                )
            )
            continue
        if config.depth < needed:
            found.append(
                (
                    "FB",
                    producer,
                    None,
                    f"FB: frame buffer of {producer} retains {config.depth} frame(s) "
                    f"but its slowest consumer reaches back {needed}",
                )
            )
        if (
            config.image_width != schedule.image_width
            or config.image_height != schedule.image_height
        ):
            found.append(
                (
                    "FB",
                    producer,
                    None,
                    f"FB: frame buffer of {producer} is sized "
                    f"{config.image_width}x{config.image_height} but the schedule "
                    f"processes {schedule.image_width}x{schedule.image_height} frames",
                )
            )
    return found


def simulate_schedule(
    schedule: PipelineSchedule,
    *,
    max_rows: int | None = None,
    extra_cycles: int | None = None,
    raise_on_violation: bool = False,
    max_violations: int = 16,
) -> SimulationReport:
    """Simulate ``schedule`` and return access statistics plus any violations.

    ``max_rows`` bounds the number of image rows processed (the default covers
    the pipeline's ramp-up plus a few steady-state rows, which exercises every
    relative access phase).  ``raise_on_violation`` raises
    :class:`SimulationError` on the first violation instead of collecting them.
    """
    width = schedule.image_width
    dag = schedule.dag
    starts = schedule.start_cycles
    max_start = max(starts.values())

    rows = _analysis_rows(schedule, max_rows)
    frame_pixels = width * rows

    end_cycle = max_start + frame_pixels
    if extra_cycles is not None:
        end_cycle = min(end_cycle, max_start + extra_cycles)

    buffer_stats = {name: BufferStats(producer=name) for name in schedule.line_buffers}
    violations: list[str] = []
    violation_keys: set[tuple[str, str, str | None]] = set()

    # Pre-compute, per buffer, its readers and their stencil heights.
    readers: dict[str, list[tuple[str, int]]] = {}
    for producer, config in schedule.line_buffers.items():
        readers[producer] = [
            (edge.consumer, edge.window.height) for edge in dag.out_edges(producer)
        ]

    output_stage = dag.output_stages()[0].name
    output_start = starts[output_stage]
    output_pixels = 0

    def record(message: str, rule: str, producer: str, consumer: str | None = None) -> None:
        if raise_on_violation:
            raise SimulationError(message)
        violation_keys.add((rule, producer, consumer))
        if len(violations) < max_violations:
            violations.append(message)

    for rule, producer, consumer, message in frame_buffer_violations(schedule):
        record(message, rule, producer, consumer)

    for t in range(end_cycle):
        if t >= output_start and t - output_start < frame_pixels:
            output_pixels += 1
        for producer, config in schedule.line_buffers.items():
            if config.lines == 0:
                # Sub-line DFF buffers have no SRAM blocks and cannot stall.
                continue
            stats = buffer_stats[producer]
            lines = config.lines
            factor = max(1, config.coalesce_factor)
            writer_start = starts[producer]

            accesses: dict[int, set[tuple[int, int]]] = {}

            # Writer access.
            writer_line = None
            if writer_start <= t < writer_start + frame_pixels:
                n = t - writer_start
                writer_line = n // width
                writer_col = n % width
                stats.writes += 1
                if config.style != "fifo":
                    slot = writer_line % lines
                    block = slot // factor
                    accesses.setdefault(block, set()).add((writer_line, writer_col))
                    # R2: the slot being overwritten must no longer be needed.
                    old_line = writer_line - lines
                    if old_line >= 0:
                        for consumer, height in readers[producer]:
                            last_needed_cycle = starts[consumer] + old_line * width + writer_col
                            first_row_reading = old_line - height + 1
                            if first_row_reading >= rows:
                                continue
                            if last_needed_cycle >= t:
                                record(
                                    f"R2 violation at cycle {t}: {producer} overwrites line "
                                    f"{old_line} col {writer_col} still needed by {consumer}",
                                    "R2",
                                    producer,
                                    consumer,
                                )

            # Reader accesses.
            if config.style == "fifo":
                # A FIFO chain pops and pushes every block every active cycle.
                if writer_start <= t < writer_start + frame_pixels:
                    stats.reads += config.num_blocks
                    stats.writes += max(0, config.num_blocks - 1)
                continue

            read_addresses: set[tuple[int, int]] = set()
            for consumer, height in readers[producer]:
                consumer_start = starts[consumer]
                if not (consumer_start <= t < consumer_start + frame_pixels):
                    continue
                n = t - consumer_start
                row = n // width
                col = n % width
                for k in range(height):
                    line = row + k
                    if line >= rows:
                        continue
                    # R1: the pixel must already have been produced.
                    produced_at = writer_start + line * width + col
                    if produced_at >= t:
                        record(
                            f"R1 violation at cycle {t}: {consumer} reads ({line},{col}) of "
                            f"{producer} which is produced at cycle {produced_at}",
                            "R1",
                            producer,
                            consumer,
                        )
                    read_addresses.add((line, col))

            stats.reads += len(read_addresses)
            for line, col in read_addresses:
                slot = line % lines
                block = slot // factor
                accesses.setdefault(block, set()).add((line, col))

            # R3: accesses per block per cycle must not exceed the port count.
            ports = config.spec.ports
            for block, addresses in accesses.items():
                count = len(addresses)
                stats.accesses_per_block[block] = stats.accesses_per_block.get(block, 0) + count
                if count > stats.peak_block_accesses:
                    stats.peak_block_accesses = count
                if count > ports:
                    record(
                        f"R3 violation at cycle {t}: block {block} of LB[{producer}] receives "
                        f"{count} accesses but has {ports} port(s)",
                        "R3",
                        producer,
                    )

    steady_cycles = max(1, end_cycle - output_start)
    throughput = min(1.0, output_pixels / steady_cycles)
    return SimulationReport(
        schedule=schedule,
        cycles_simulated=end_cycle,
        rows_simulated=rows,
        output_pixels=output_pixels,
        steady_state_throughput=throughput,
        buffer_stats=buffer_stats,
        violations=violations,
        violation_keys=violation_keys,
    )


def _max_stencil_height(schedule: PipelineSchedule) -> int:
    heights = [edge.window.height for edge in schedule.dag.edges()]
    return max(heights) if heights else 1


def _analysis_rows(schedule: PipelineSchedule, max_rows: int | None) -> int:
    """Rows of the frame both checkers analyze: ramp-up plus steady-state slack."""
    width = schedule.image_width
    max_start = max(schedule.start_cycles.values())
    rows_needed = max_start // width + 1 + _max_stencil_height(schedule) + 3
    rows = min(schedule.image_height, rows_needed if max_rows is None else max(max_rows, 1))
    return min(rows, schedule.image_height)


# ---------------------------------------------------------------------------
# Reserved-table legality: closed-form R1/R2 plus a periodic R3 slot table
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class LegalityViolation:
    """One violated no-stall rule, identified structurally."""

    rule: str  # "R1" | "R2" | "R3"
    producer: str
    consumer: str | None
    message: str

    @property
    def key(self) -> tuple[str, str, str | None]:
        return (self.rule, self.producer, self.consumer)


@dataclass
class LegalityReport:
    """Outcome of the reserved-table legality check.

    Comparable to :class:`SimulationReport` at rule granularity:
    ``report.keys() == simulate_schedule(s).violation_keys`` for any schedule
    whose frame reaches full steady state (the property suite pins this).
    """

    schedule: PipelineSchedule
    method: str  # "reserved-table" | "event-walk"
    rows_analyzed: int
    phases_checked: int
    violations: list[LegalityViolation] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def keys(self) -> set[tuple[str, str, str | None]]:
        return {violation.key for violation in self.violations}

    def to_payload(self) -> dict:
        """JSON-safe form (the verify service's cache/wire unit)."""
        return {
            "passed": self.ok,
            "method": self.method,
            "rows_analyzed": self.rows_analyzed,
            "phases_checked": self.phases_checked,
            "violations": [
                {
                    "rule": v.rule,
                    "producer": v.producer,
                    "consumer": v.consumer,
                    "message": v.message,
                }
                for v in self.violations
            ],
        }


def check_schedule_legality(
    schedule: PipelineSchedule, *, max_rows: int | None = None
) -> LegalityReport:
    """Check R1/R2/R3 legality without walking cycles.

    Exploits the periodicity of line-buffer access: with stage starts
    ``S`` and image width ``W``, causality (R1) and eviction (R2) reduce to
    closed-form inequalities on start-cycle deltas, and port pressure (R3)
    repeats with period ``lines`` rows x ``W`` columns, collapsing further to
    ``lines`` row phases x one column segment per distinct start-delta
    remainder.  Total cost is O(lines x accessors x segments) per buffer —
    the reserved-table/II formulation — instead of the event walk's
    O(cycles x accessors).

    The table models *full steady state* (every accessor of a buffer active
    simultaneously, no frame-edge clamping); boundary cycles only ever access
    subsets of some steady-state phase, so the two checkers flag the same
    rule set whenever the frame is tall enough to reach steady state.  When
    it is not (a start delta comparable to the whole frame), this function
    falls back to the event walk and says so via ``method``.
    """
    width = schedule.image_width
    dag = schedule.dag
    starts = schedule.start_cycles
    # Unlike the event walk, analysis cost does not grow with the frame, so
    # default to the full image height (widest steady-state window); pass
    # ``max_rows`` only to mirror a bounded event walk for comparison.
    rows = schedule.image_height if max_rows is None else _analysis_rows(schedule, max_rows)

    violations: list[LegalityViolation] = [
        LegalityViolation(rule, producer, consumer, message)
        for rule, producer, consumer, message in frame_buffer_violations(schedule)
    ]
    phases_checked = 0

    for producer, config in schedule.line_buffers.items():
        if config.lines == 0 or config.style == "fifo":
            # Sub-line DFFs have no SRAM blocks; FIFO chains pop/push every
            # block each cycle by construction.  Neither is rule-checked,
            # matching the event walk.
            continue
        lines = config.lines
        factor = max(1, config.coalesce_factor)
        ports = config.spec.ports
        writer_start = starts[producer]
        readers = [(edge.consumer, edge.window.height) for edge in dag.out_edges(producer)]

        # --- R1 / R2: closed forms over start-cycle deltas -----------------
        for consumer, height in readers:
            delta = starts[consumer] - writer_start
            # R1: reading line row+k at cycle t needs the pixel produced
            # strictly earlier; produced_at >= t iff k*W >= delta.  The
            # smallest violating tap is k_v = ceil(delta / W).
            k_violating = max(0, -(-delta // width))
            if k_violating <= height - 1 and k_violating <= rows - 1:
                violations.append(
                    LegalityViolation(
                        "R1",
                        producer,
                        consumer,
                        f"R1: {consumer} starts {delta} cycles after {producer} but reads "
                        f"stencil line +{k_violating}, produced {k_violating * width - delta} "
                        "cycles too late",
                    )
                )
            # R2: overwriting slot (line - lines) collides with the last
            # read of the evicted line iff delta >= lines*W; only reachable
            # when the frame wraps the buffer (rows > lines).
            if rows > lines and delta >= lines * width:
                violations.append(
                    LegalityViolation(
                        "R2",
                        producer,
                        consumer,
                        f"R2: {consumer} lags {producer} by {delta} cycles but LB[{producer}] "
                        f"holds only {lines} line(s) = {lines * width} cycles",
                    )
                )

        # --- R3: periodic reserved table -----------------------------------
        # Accessor taps are identified by (line offset from the writer's
        # current line, start-delta remainder r); equal pairs share one
        # physical address (broadcast), distinct pairs per block per cycle
        # must not exceed the port count.  The pattern depends only on the
        # writer's row phase (mod lines) and which side of each remainder
        # breakpoint the writer's column is on.
        entries = []
        window_lo, window_hi = 0, rows - 1
        for consumer, height in readers:
            quotient, remainder = divmod(starts[consumer] - writer_start, width)
            entries.append((quotient, remainder, height, consumer))
            window_lo = max(window_lo, quotient + 1)
            window_hi = min(window_hi, rows - height + quotient)
        if window_hi - window_lo + 1 < lines:
            # Frame too short for every row phase to reach full steady
            # state: the closed table cannot be trusted, so defer the whole
            # schedule to the exact event walk.
            return _legality_from_event_walk(schedule, rows)

        breakpoints = sorted({0, *(remainder for _, remainder, _, _ in entries)})
        oversubscribed = False
        for row_phase in range(window_lo, window_lo + lines):
            if oversubscribed:
                break
            for column in breakpoints:
                phases_checked += 1
                per_block: dict[int, set[tuple[int, int]]] = {}
                per_block.setdefault((row_phase % lines) // factor, set()).add((0, 0))
                for quotient, remainder, height, _consumer in entries:
                    base = -quotient - (1 if column < remainder else 0)
                    for k in range(height):
                        line = row_phase + base + k
                        if not 0 <= line < rows:
                            continue
                        block = (line % lines) // factor
                        per_block.setdefault(block, set()).add((base + k, remainder))
                for block, pairs in per_block.items():
                    if len(pairs) > ports:
                        violations.append(
                            LegalityViolation(
                                "R3",
                                producer,
                                None,
                                f"R3: block {block} of LB[{producer}] receives {len(pairs)} "
                                f"distinct accesses in row phase {row_phase % lines} column "
                                f"segment {column} but has {ports} port(s)",
                            )
                        )
                        oversubscribed = True
                        break
                if oversubscribed:
                    break

    return LegalityReport(
        schedule=schedule,
        method="reserved-table",
        rows_analyzed=rows,
        phases_checked=phases_checked,
        violations=violations,
    )


def _legality_from_event_walk(schedule: PipelineSchedule, rows: int) -> LegalityReport:
    """Exact fallback: run the event walk and lift its violations to rule keys."""
    report = simulate_schedule(schedule, max_rows=rows, max_violations=1_000_000)
    messages = {}
    for message in report.violations:
        rule = message.split(" ", 1)[0].rstrip(":")
        messages.setdefault(rule, message)
    violations = [
        LegalityViolation(rule, producer, consumer, messages.get(rule, f"{rule} violated"))
        for rule, producer, consumer in sorted(
            report.violation_keys, key=lambda key: (key[0], key[1], key[2] or "")
        )
    ]
    return LegalityReport(
        schedule=schedule,
        method="event-walk",
        rows_analyzed=report.rows_simulated,
        phases_checked=report.cycles_simulated,
        violations=violations,
    )
