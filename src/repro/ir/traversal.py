"""Graph traversal utilities over :class:`repro.ir.dag.PipelineDAG`.

These are deliberately implemented directly (rather than converting to a
``networkx`` graph on every call) because the scheduler invokes them in inner
loops during constraint pruning; ``networkx`` remains available for the DSE
and reporting layers.
"""

from __future__ import annotations

from collections import deque

from repro.errors import GraphError
from repro.ir.dag import PipelineDAG


def topological_order(dag: PipelineDAG) -> list[str]:
    """Kahn topological sort.  Raises :class:`GraphError` on cycles."""
    in_degree = {name: len(dag.producers_of(name)) for name in dag.stage_names()}
    queue = deque(sorted(name for name, deg in in_degree.items() if deg == 0))
    order: list[str] = []
    while queue:
        node = queue.popleft()
        order.append(node)
        for consumer in dag.consumers_of(node):
            in_degree[consumer] -= 1
            if in_degree[consumer] == 0:
                queue.append(consumer)
    if len(order) != len(dag):
        cyclic = sorted(name for name, deg in in_degree.items() if deg > 0)
        raise GraphError(f"Pipeline graph contains a cycle involving {cyclic}")
    return order


def reachable_from(dag: PipelineDAG, source: str) -> set[str]:
    """All stages reachable from ``source`` by following producer->consumer edges."""
    seen: set[str] = set()
    stack = [source]
    while stack:
        node = stack.pop()
        for consumer in dag.consumers_of(node):
            if consumer not in seen:
                seen.add(consumer)
                stack.append(consumer)
    return seen


def ancestors_of(dag: PipelineDAG, target: str) -> set[str]:
    """All stages from which ``target`` is reachable."""
    seen: set[str] = set()
    stack = [target]
    while stack:
        node = stack.pop()
        for producer in dag.producers_of(node):
            if producer not in seen:
                seen.add(producer)
                stack.append(producer)
    return seen


def partial_order(dag: PipelineDAG) -> dict[str, set[str]]:
    """The reflexive partial order used by constraint pruning (Sec. 5.4).

    Returns a mapping ``order[i]`` = set of stages ``j`` with ``i ≼ j``
    (``j`` is ``i`` itself or depends, directly or transitively, on ``i``).
    """
    order: dict[str, set[str]] = {}
    for name in dag.stage_names():
        descendants = reachable_from(dag, name)
        descendants.add(name)
        order[name] = descendants
    return order


def precedes(order: dict[str, set[str]], i: str, j: str) -> bool:
    """True when ``i ≼ j`` under the partial order returned by :func:`partial_order`."""
    try:
        return j in order[i]
    except KeyError:
        raise GraphError(f"Stage {i!r} not present in the partial order") from None


def longest_path_lengths(dag: PipelineDAG, weight_fn=None) -> dict[str, int]:
    """Longest (weighted) path from any input stage to each stage.

    ``weight_fn(edge)`` gives the weight of an edge (default 1).  Used to
    compute ASAP schedules and end-to-end pipeline latency.
    """
    if weight_fn is None:
        weight_fn = lambda edge: 1  # noqa: E731 - tiny local default
    lengths = {name: 0 for name in dag.stage_names()}
    for node in topological_order(dag):
        for edge in dag.out_edges(node):
            candidate = lengths[node] + weight_fn(edge)
            if candidate > lengths[edge.consumer]:
                lengths[edge.consumer] = candidate
    return lengths


def pipeline_depth(dag: PipelineDAG) -> int:
    """Number of stages on the longest input->output chain."""
    lengths = longest_path_lengths(dag)
    return max(lengths.values(), default=0) + 1 if len(dag) else 0
