"""Unit tests for scheduling constraint generation."""

import pytest

from repro.core.constraints import (
    buffer_accessors,
    coalescing_safety_constraints,
    contention_disjunctions,
    data_dependency_constraints,
    pair_gap,
    schedule_horizon,
)
from repro.core.access import Accessor

from tests.conftest import TEST_WIDTH, build_chain, build_paper_example, build_two_consumer

W = TEST_WIDTH


class TestDataDependencies:
    def test_chain_dependencies(self):
        dag = build_chain(3, stencil=3)
        deps = data_dependency_constraints(dag, W)
        assert len(deps) == 2
        for dep in deps:
            assert dep.min_delay == 2 * W + 1

    def test_pointwise_dependency(self):
        dag = build_chain(2, stencil=1)
        deps = data_dependency_constraints(dag, W)
        assert deps[0].min_delay == 1

    def test_paper_example_dependencies(self):
        dag = build_paper_example()
        deps = {(d.producer, d.consumer): d.min_delay for d in data_dependency_constraints(dag, W)}
        assert deps[("K0", "K1")] == 2 * W + 1
        assert deps[("K0", "K2")] == W + 1  # 2x2 window
        assert deps[("K1", "K2")] == 2 * W + 1


class TestAccessors:
    def test_buffer_accessors_include_writer(self):
        dag = build_paper_example()
        accessors = buffer_accessors(dag, "K0")
        names = {a.stage for a in accessors}
        assert names == {"K0", "K1", "K2"}
        writer = next(a for a in accessors if a.is_writer)
        assert writer.stencil_height == 1

    def test_consumer_heights_from_edges(self):
        dag = build_paper_example()
        heights = {a.stage: a.stencil_height for a in buffer_accessors(dag, "K0")}
        assert heights["K1"] == 3
        assert heights["K2"] == 2


class TestContention:
    def test_dual_port_single_consumer_has_no_disjunctions(self):
        dag = build_chain(3)
        assert contention_disjunctions(dag, W, ports=2) == []

    def test_single_port_chain_generates_pairs(self):
        dag = build_chain(3)
        disjunctions = contention_disjunctions(dag, W, ports=1)
        assert len(disjunctions) == 2  # one per producer-consumer buffer
        for disjunction in disjunctions:
            assert disjunction.is_singleton
            candidate = disjunction.candidates[0]
            assert candidate.min_gap == 3 * W

    def test_paper_example_dual_port(self):
        dag = build_paper_example()
        disjunctions = contention_disjunctions(dag, W, ports=2)
        assert len(disjunctions) == 1
        assert disjunctions[0].buffer == "K0"
        trailing = {c.trailing for c in disjunctions[0].candidates}
        # The writer K0 can never be the trailing stage.
        assert "K0" not in trailing

    def test_impossible_orientations_filtered(self):
        dag = build_paper_example()
        disjunctions = contention_disjunctions(dag, W, ports=2)
        pairs = {(c.trailing, c.leading) for c in disjunctions[0].candidates}
        # K1 can never trail K2 because K2 depends on K1.
        assert ("K1", "K2") not in pairs

    def test_two_independent_consumers_keep_both_orientations(self):
        dag = build_two_consumer()
        disjunctions = contention_disjunctions(dag, W, ports=2)
        pairs = {(c.trailing, c.leading) for c in disjunctions[0].candidates}
        assert ("A", "B") in pairs and ("B", "A") in pairs

    def test_invalid_ports(self):
        with pytest.raises(ValueError):
            contention_disjunctions(build_chain(), W, ports=0)

    def test_coalesced_buffer_uses_consumer_pairs(self):
        dag = build_two_consumer()
        disjunctions = contention_disjunctions(dag, W, ports=2, coalesce_factors={"K0": 2})
        assert len(disjunctions) == 1
        for candidate in disjunctions[0].candidates:
            assert candidate.min_gap == (3 + 2 - 1) * W


class TestCoalescingSafety:
    def test_constraints_only_for_coalesced_buffers(self):
        dag = build_chain(3)
        constraints = coalescing_safety_constraints(dag, W, {"K0": 2, "K1": 1})
        assert len(constraints) == 1
        assert constraints[0].producer == "K0"
        assert constraints[0].min_delay == 3 * W

    def test_no_constraints_without_coalescing(self):
        dag = build_chain(3)
        assert coalescing_safety_constraints(dag, W, {"K0": 1, "K1": 1}) == []


class TestGaps:
    def test_pair_gap_writer_pair(self):
        trailing = Accessor("c", 3)
        leading = Accessor("p", 1, is_writer=True)
        assert pair_gap(trailing, leading, W, 1) == 3 * W
        assert pair_gap(trailing, leading, W, 2) == 3 * W

    def test_pair_gap_consumer_pair_under_coalescing(self):
        trailing = Accessor("c2", 3)
        leading = Accessor("c1", 3)
        assert pair_gap(trailing, leading, W, 1) == 3 * W
        assert pair_gap(trailing, leading, W, 2) == 4 * W

    def test_schedule_horizon_is_generous(self):
        dag = build_paper_example()
        horizon = schedule_horizon(dag, W)
        deps = data_dependency_constraints(dag, W)
        assert horizon > sum(d.min_delay for d in deps)
