"""Access-set arithmetic (paper Sec. 5.3, Eq. 3-4).

The scheduler's contention constraints and the cycle-level simulator's
legality checks both reason about *which lines of a line buffer a stage
touches at a given cycle*.  This module centralises that arithmetic so the
optimizer and the verifier cannot drift apart.

Conventions
-----------
* A stage ``i`` with start cycle ``S_i`` is *active* at cycles
  ``S_i <= t < S_i + W*H``.
* At cycle ``t`` the first line accessed is ``L_i(t) = ceil((t - S_i) / W)``
  (Eq. 3) and the access set is ``{L_i(t), ..., L_i(t) + SH_i - 1}`` (Eq. 4),
  where ``SH_i`` is 1 for the stage writing the buffer.
* Under line coalescing with factor ``F``, the same formulas apply at block
  granularity with ``W -> F*W`` and ``SH -> ceil(SH / F)``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


def ceil_div(numerator: int, denominator: int) -> int:
    """Integer ceiling division for non-negative denominators."""
    return -(-numerator // denominator)


def first_line(t: int, start_cycle: int, width: int) -> int:
    """Eq. 3: the first (lowest-indexed) line a stage touches at cycle ``t``."""
    if t < start_cycle:
        raise ValueError(f"Stage is not active at cycle {t} (starts at {start_cycle})")
    return ceil_div(t - start_cycle, width)


def access_set(t: int, start_cycle: int, width: int, stencil_height: int) -> range:
    """Eq. 4: the set of line indices a stage accesses at cycle ``t``."""
    start = first_line(t, start_cycle, width)
    return range(start, start + stencil_height)


@dataclass(frozen=True)
class Accessor:
    """One stage accessing a particular line buffer.

    ``stencil_height`` is expressed in *row units* of that buffer: image lines
    normally, blocks of ``coalesce_factor`` lines when coalescing is applied.
    ``is_writer`` marks the producer (its stencil height is always 1).
    """

    stage: str
    stencil_height: int
    is_writer: bool = False


def separation_requirement(trailing_height: int, row_cycles: int) -> int:
    """Minimum start-cycle gap for two accessors' access sets to stay disjoint.

    If stage ``i`` (reading ``trailing_height`` row units) trails stage ``j``,
    then ``S_i - S_j >= row_cycles * trailing_height`` guarantees
    ``max(A_i,t) < min(A_j,t)`` for every cycle ``t`` (Eq. 9 -> Eq. 12, with
    the trailing stage's stencil height; see DESIGN.md for the index note).
    """
    return row_cycles * trailing_height


def sets_disjoint(
    t: int,
    trailing_start: int,
    trailing_height: int,
    leading_start: int,
    leading_height: int,
    width: int,
) -> bool:
    """Direct (set-based) disjointness check used in tests against Eq. 12."""
    if t < max(trailing_start, leading_start):
        return True
    trailing = access_set(t, trailing_start, width, trailing_height)
    leading = access_set(t, leading_start, width, leading_height)
    return trailing.stop <= leading.start or leading.stop <= trailing.start


def required_line_slots(max_delay: int, width: int) -> int:
    """Physical line slots needed for a producer whose slowest consumer lags ``max_delay``.

    Equation (2) of the paper sizes the buffer as ``ceil(delay / W)`` lines.
    Physically the buffer must simultaneously hold every line from the oldest
    one still needed by a consumer up to the line being written, which is
    ``floor(delay / W) + 1`` lines; the two coincide except when the delay is
    an exact multiple of ``W`` (see DESIGN.md).  We allocate the physical
    count and report the model count separately.
    """
    if max_delay < 0:
        raise ValueError("Delay cannot be negative")
    if max_delay == 0:
        return 1
    return max_delay // width + 1


def model_line_slots(max_delay: int, width: int) -> int:
    """Eq. 2 exactly: ``ceil(delay / W)`` lines (the paper's reported size)."""
    if max_delay <= 0:
        return 0 if max_delay == 0 else 0
    return math.ceil(max_delay / width)


def frame_buffer_pixels(depth: int, image_width: int, image_height: int) -> int:
    """Pixels a producer's frame buffer must retain for ``depth`` past frames.

    Temporal consumers read the producer at frame offsets down to ``-depth``;
    the temporal reuse distance of such a read is ``depth`` *whole frames*, so
    unlike line buffers (which hold ``O(delay / W)`` lines) the frame buffer
    must hold ``depth x H x W`` pixels.  The size is independent of start
    cycles — frame history is carried across frame boundaries, not across the
    raster scan — which is why frame buffers sit outside the ILP and are added
    to the SRAM total as a constant.
    """
    if depth < 0:
        raise ValueError(f"Frame-buffer depth cannot be negative, got {depth}")
    if image_width < 1 or image_height < 1:
        raise ValueError(f"Image extent must be positive, got {image_width}x{image_height}")
    return depth * image_width * image_height


def minimal_slot_count(
    width: int,
    ports: int,
    accessors: list[tuple[int, int]],
    *,
    coalesce_factor: int = 1,
    max_extra: int = 4,
) -> int:
    """Smallest number of line slots that keeps every block within its port budget.

    ``accessors`` is a list of ``(delay, stencil_height)`` pairs relative to the
    buffer's writer (the writer itself is ``(0, 1)`` and is added
    automatically).  Starting from the capacity bound
    ``floor(max_delay / W) + 1`` (the lines that must coexist), the function
    checks one steady-state period at element granularity: logical lines wrap
    onto ``B`` physical slots (grouped ``coalesce_factor`` per block), and no
    block may collect more accesses in a cycle than it has ports.  Slot-count
    aliasing between the writer's newest line and a slow consumer's oldest
    line occasionally needs one extra slot; the search adds at most
    ``max_extra`` lines before giving up (which would indicate a scheduling
    bug).
    """
    if not accessors:
        return 0
    max_delay = max(delay for delay, _ in accessors)
    base = required_line_slots(max_delay, width)
    all_accessors = [(0, 1)] + list(accessors)
    factor = max(1, coalesce_factor)

    # Steady state starts once every accessor is active; one period of W cycles
    # covers every relative column phase.
    t0 = (max_delay // width + 2) * width
    for extra in range(max_extra + 1):
        slots = base + extra
        if _period_is_legal(width, ports, all_accessors, slots, factor, t0):
            return slots
    return base + max_extra


def _period_is_legal(
    width: int,
    ports: int,
    accessors: list[tuple[int, int]],
    slots: int,
    factor: int,
    t0: int,
) -> bool:
    for t in range(t0, t0 + width):
        block_accesses: dict[int, int] = {}
        for delay, height in accessors:
            n = t - delay
            if n < 0:
                continue
            row = n // width
            for k in range(height):
                line = row + k
                slot = line % slots
                block = slot // factor
                block_accesses[block] = block_accesses.get(block, 0) + 1
        if any(count > ports for count in block_accesses.values()):
            return False
    return True
