"""FPGA (Spartan-7) BRAM usage and power model.

The paper's FPGA numbers come from Vivado: BRAM utilisation from the resource
monitor and power from the switching activity of a post-implementation
simulation.  We reproduce both analytically:

* **BRAM usage**: each line-buffer block maps onto one 36 Kbit BRAM (lines
  wider than one BRAM span several, which the allocator already accounts for);
* **power**: each used BRAM consumes an access-dependent dynamic power — a
  block serving two accesses per cycle consumes ~35% more than one serving a
  single access (the paper's measurement) — plus a per-BRAM static component
  and a board-level static floor.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.schedule import PipelineSchedule
from repro.errors import MemoryConfigError
from repro.estimate.power import buffer_access_rates
from repro.memory.spec import FpgaSpec, spartan7_fpga


@dataclass
class FpgaBufferUsage:
    producer: str
    brams: int
    accesses_per_cycle: float
    dynamic_mw: float


@dataclass
class FpgaReport:
    """BRAM usage and power of one accelerator mapped onto the FPGA."""

    schedule: PipelineSchedule
    fpga: FpgaSpec
    buffers: dict[str, FpgaBufferUsage] = field(default_factory=dict)
    #: dynamic power of one BRAM serving one access per cycle (mW).
    bram_single_access_mw: float = 1.6
    #: extra power when a BRAM serves two accesses per cycle (paper: ~35%).
    dual_access_penalty: float = 0.35
    bram_static_mw: float = 0.25

    @property
    def brams_used(self) -> int:
        return sum(b.brams for b in self.buffers.values())

    @property
    def bram_utilisation(self) -> float:
        return self.brams_used / self.fpga.total_blocks

    @property
    def fits(self) -> bool:
        return self.brams_used <= self.fpga.total_blocks

    @property
    def dynamic_mw(self) -> float:
        return sum(b.dynamic_mw for b in self.buffers.values())

    @property
    def static_mw(self) -> float:
        return self.fpga.static_power_mw + self.brams_used * self.bram_static_mw

    @property
    def total_mw(self) -> float:
        return self.dynamic_mw + self.static_mw


def fpga_report(
    schedule: PipelineSchedule,
    fpga: FpgaSpec | None = None,
    *,
    require_fit: bool = False,
) -> FpgaReport:
    """Map a scheduled accelerator onto the FPGA's BRAM budget."""
    fpga = fpga or spartan7_fpga()
    report = FpgaReport(schedule=schedule, fpga=fpga)

    for producer, config in schedule.line_buffers.items():
        if config.num_blocks == 0:
            continue
        accesses = buffer_access_rates(config)
        # Average accesses per BRAM in this buffer; one access costs the base
        # power, a second access adds the measured ~35%.
        per_bram = accesses / config.num_blocks
        dynamic_per_bram = report.bram_single_access_mw * (
            min(per_bram, 1.0) + report.dual_access_penalty * max(0.0, min(per_bram - 1.0, 1.0))
            if per_bram > 0
            else 0.0
        )
        # More than two accesses per block never happens in a legal design.
        dynamic = dynamic_per_bram * config.num_blocks
        report.buffers[producer] = FpgaBufferUsage(
            producer=producer,
            brams=config.num_blocks,
            accesses_per_cycle=accesses,
            dynamic_mw=dynamic,
        )

    if require_fit and not report.fits:
        raise MemoryConfigError(
            f"Design needs {report.brams_used} BRAMs but the FPGA provides {fpga.total_blocks}"
        )
    return report


def multi_algorithm_fit(reports: list[FpgaReport], fpga: FpgaSpec | None = None) -> tuple[int, bool]:
    """Total BRAMs needed to host several accelerators at once and whether they fit."""
    fpga = fpga or spartan7_fpga()
    total = sum(r.brams_used for r in reports)
    return total, total <= fpga.total_blocks
