"""Typed job records for the compilation service.

The engine's unit of work is a :class:`repro.api.CompileTarget`; a
:class:`CompileResult` carries the target it answered plus either the compiled
accelerator or a captured error, so that one infeasible design point never
aborts a batch or a DSE sweep.  :class:`BatchResult` aggregates a batch
submission with its cache statistics and wall-clock time.

:class:`CompileRequest` is the legacy request record from before the unified
target API.  Submitting one still works — the engine converts it via
:meth:`CompileRequest.to_target` and emits a :class:`DeprecationWarning` — and
``CompileResult.request`` reconstructs one for callers that still read it.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import Any

from repro.api.target import CompileTarget
from repro.core.compiler import CompiledAccelerator
from repro.core.scheduler import SchedulerOptions
from repro.errors import ReproError
from repro.ir.dag import PipelineDAG
from repro.memory.spec import MemorySpec, asic_dual_port
from repro.service.cache import CacheStats


class CompileStatus(enum.Enum):
    """Terminal state of one compile job."""

    OK = "ok"
    ERROR = "error"


#: Where a result came from: ``"memory"``/``"disk"`` (cache tiers),
#: ``"solver"`` (at least one fresh generator run), or ``"deduplicated"``
#: (shared with an identical in-flight request).
SOURCE_DEDUPLICATED = "deduplicated"


@dataclass
class CompileRequest:
    """Legacy compilation job record (pre-:class:`CompileTarget`).

    ``memory_spec`` and ``options`` may be left ``None``; :meth:`to_target`
    fills in the library defaults (dual-port ASIC SRAM, default options) and
    applies the ``coalescing`` convenience flag onto a private copy of the
    options, so callers' objects are never mutated.
    """

    dag: PipelineDAG
    image_width: int
    image_height: int
    memory_spec: MemorySpec | None = None
    options: SchedulerOptions | None = None
    coalescing: bool = False
    label: str = ""
    metadata: dict[str, Any] = field(default_factory=dict)

    def to_target(self) -> CompileTarget:
        """The equivalent :class:`CompileTarget`, with defaults resolved."""
        return CompileTarget.from_kwargs(
            self.dag,
            image_width=self.image_width,
            image_height=self.image_height,
            memory_spec=self.memory_spec,
            options=self.options,
            coalescing=self.coalescing,
            label=self.label,
            metadata=dict(self.metadata),
        )

    def resolved(self) -> "CompileRequest":
        """A copy with defaults applied and options isolated from the caller."""
        options = self.options or SchedulerOptions()
        options = replace(
            options, per_stage_coalescing=dict(options.per_stage_coalescing)
        )
        if self.coalescing:
            options.coalescing = True
        return replace(
            self,
            memory_spec=self.memory_spec or asic_dual_port(),
            options=options,
            coalescing=False,
            metadata=dict(self.metadata),
        )


@dataclass
class CompileResult:
    """Outcome of one compile job, successful or not."""

    target: CompileTarget
    fingerprint: str = ""
    accelerator: CompiledAccelerator | None = None
    error: str | None = None
    source: str = "solver"
    seconds: float = 0.0

    @property
    def request(self) -> CompileRequest:
        """The legacy request record equivalent to :attr:`target`.

        Only defined for optimizer targets: :class:`CompileRequest` predates
        generators and cannot express a baseline, so converting one would
        silently turn a Darkroom/SODA/FixyNN result into an ImaGen request.
        """
        if not self.target.is_imagen:
            raise ValueError(
                f"CompileResult.request cannot represent a {self.target.generator!r} "
                "target (CompileRequest has no generator); use result.target"
            )
        return CompileRequest(
            dag=self.target.dag,
            image_width=self.target.image_width,
            image_height=self.target.image_height,
            memory_spec=self.target.memory_spec,
            options=self.target.options,
            label=self.target.label,
            metadata=dict(self.target.metadata),
        )

    @property
    def status(self) -> CompileStatus:
        return CompileStatus.OK if self.error is None else CompileStatus.ERROR

    @property
    def ok(self) -> bool:
        return self.error is None

    @property
    def from_cache(self) -> bool:
        return self.source in ("memory", "disk")

    def unwrap(self) -> CompiledAccelerator:
        """The accelerator, or a :class:`ReproError` describing the failure."""
        if self.accelerator is None:
            raise ReproError(
                f"Compilation of {self.target.display_label!r} failed: {self.error}"
            )
        return self.accelerator


@dataclass
class BatchResult:
    """Results of one batch submission, in request order."""

    results: list[CompileResult]
    seconds: float = 0.0
    cache_stats: CacheStats | None = None

    def __len__(self) -> int:
        return len(self.results)

    def __iter__(self):
        return iter(self.results)

    @property
    def ok_results(self) -> list[CompileResult]:
        return [r for r in self.results if r.ok]

    @property
    def failures(self) -> list[CompileResult]:
        return [r for r in self.results if not r.ok]

    @property
    def accelerators(self) -> list[CompiledAccelerator]:
        """Accelerators of the successful jobs, in request order."""
        return [r.accelerator for r in self.results if r.accelerator is not None]

    def raise_on_error(self) -> "BatchResult":
        """Raise a :class:`ReproError` summarizing failures, if any."""
        failures = self.failures
        if failures:
            summary = "; ".join(
                f"{f.target.display_label!r}: {f.error}" for f in failures[:5]
            )
            more = f" (+{len(failures) - 5} more)" if len(failures) > 5 else ""
            raise ReproError(f"{len(failures)}/{len(self.results)} compile jobs failed: {summary}{more}")
        return self
