"""Solver-acceleration benchmark: warm-started and compound solves.

Quantifies the two speed claims of the warm-start layer, while the unit
suite (``tests/unit/test_warmstart.py``) pins that neither path changes a
single byte of the solved schedules:

* A solve warm-started from a cached neighbor (same DAG, other resolution)
  must run its scheduling phase at least 2x faster than a cold solve — the
  transfer certifies the neighbor's solution optimal and skips the ILP.
* The compound Fig. 10 sweep (canny-m's 16 designs + denoise-m's 8) must
  schedule at least 1.5x faster than sequential per-variant solves — most
  variants certify against the baseline's solution, the remainder solve as
  blocks of one block-diagonal model.

Both measurements isolate the scheduler (``schedule_pipeline`` /
``schedule_compound``): report generation and evaluation around it are
identical in either mode and would only dilute the ratio.
"""

from __future__ import annotations

import itertools
import time

from repro.algorithms import build_algorithm
from repro.api import CompileTarget
from repro.core.scheduler import SchedulerOptions, schedule_compound, schedule_pipeline
from repro.core.warmstart import hint_from_schedule
from repro.dse.sweep import _design_target
from repro.memory.spec import asic_dual_port
from repro.trace import collect_spans, flatten_spans

NEIGHBOR_RES = (480, 320)
TARGET_RES = (1920, 1080)


def _solve_seconds(fn) -> float:
    """Run ``fn`` under tracing and return its summed ``solve``-span seconds."""
    trace = collect_spans()
    with trace:
        fn()
    return sum(
        span.seconds for span in flatten_spans(trace.spans) if span.name == "solve"
    )


def test_warm_neighbor_solve_is_2x_faster_than_cold(benchmark):
    def cold_and_warm():
        spec = asic_dual_port()
        options = SchedulerOptions()
        outcomes = {}
        # First solve warms the HiGHS backend (SciPy's first milp call pays
        # a large one-time import cost that must not be billed to "cold").
        schedule_pipeline(build_algorithm("unsharp-m"), *NEIGHBOR_RES, spec, options)
        for algorithm in ("canny-m", "denoise-m"):
            dag = build_algorithm(algorithm)
            hint = hint_from_schedule(
                schedule_pipeline(dag, *NEIGHBOR_RES, spec, options)
            )
            cold = _solve_seconds(
                lambda: schedule_pipeline(dag, *TARGET_RES, spec, options)
            )
            warm = min(
                _solve_seconds(
                    lambda: schedule_pipeline(
                        dag, *TARGET_RES, spec, options, warm_hint=hint
                    )
                )
                for _ in range(3)
            )
            outcomes[algorithm] = (cold, warm)
        return outcomes

    outcomes = benchmark.pedantic(cold_and_warm, rounds=1, iterations=1)
    for algorithm, (cold, warm) in outcomes.items():
        speedup = cold / warm if warm > 0 else float("inf")
        print(
            f"\n{algorithm} 1080p schedule: cold {cold * 1000:.1f} ms, "
            f"warm-from-480p {warm * 1000:.2f} ms ({speedup:.1f}x)"
        )
        assert warm * 2 <= cold, (
            f"{algorithm}: warm-started solve only {speedup:.2f}x faster than cold"
        )


def test_compound_fig10_sweep_is_1_5x_faster_than_sequential(benchmark):
    def sequential_and_compound():
        spec = asic_dual_port()
        schedule_pipeline(  # HiGHS warm-up, as above
            build_algorithm("unsharp-m"), *NEIGHBOR_RES, spec, SchedulerOptions()
        )
        sequential_s = compound_s = 0.0
        variant_counts = {}
        for algorithm in ("canny-m", "denoise-m"):
            dag = build_algorithm(algorithm)
            base = CompileTarget(
                dag=dag, image_width=NEIGHBOR_RES[0], image_height=NEIGHBOR_RES[1],
                memory_spec=spec,
            )
            baseline = schedule_pipeline(
                dag, *NEIGHBOR_RES, spec, SchedulerOptions(coalescing=False)
            )
            configurable = [
                producer for producer, config in baseline.line_buffers.items()
                if config.lines >= 2
            ]
            variant_options = [
                _design_target(base, dict(zip(configurable, combo))).options
                for combo in itertools.product(
                    ("DP", "DPLC"), repeat=len(configurable)
                )
            ]
            variant_counts[algorithm] = len(variant_options)

            start = time.perf_counter()
            solo = [
                schedule_pipeline(dag, *NEIGHBOR_RES, spec, options)
                for options in variant_options
            ]
            sequential_s += time.perf_counter() - start

            start = time.perf_counter()
            merged = schedule_compound(
                dag, *NEIGHBOR_RES, spec, variant_options,
                base_hint=hint_from_schedule(baseline),
            )
            compound_s += time.perf_counter() - start

            # Identity guard: the ratio is only meaningful if the compound
            # path produced the exact same designs.
            for cold, warm in zip(solo, merged):
                assert warm.start_cycles == cold.start_cycles
                assert warm.coalesce_factors == cold.coalesce_factors
        return sequential_s, compound_s, variant_counts

    sequential_s, compound_s, variant_counts = benchmark.pedantic(
        sequential_and_compound, rounds=1, iterations=1
    )
    speedup = sequential_s / compound_s if compound_s > 0 else float("inf")
    print(
        f"\nFig. 10 scheduling ({variant_counts['canny-m']} canny-m + "
        f"{variant_counts['denoise-m']} denoise-m designs): sequential "
        f"{sequential_s:.2f}s, compound {compound_s:.2f}s ({speedup:.2f}x)"
    )
    assert variant_counts["canny-m"] == 16 and variant_counts["denoise-m"] == 8
    assert compound_s * 1.5 <= sequential_s, (
        f"compound sweep only {speedup:.2f}x faster than sequential"
    )
