"""Property-based tests of the scheduler on randomly generated pipeline DAGs.

The invariant under test is the paper's central claim: for any pipeline the
generator produces a schedule that (a) satisfies every data dependency, (b)
never over-subscribes a memory block (verified independently by the
cycle-level simulator), and (c) sustains one pixel per cycle.
"""

from __future__ import annotations

from hypothesis import Phase, given, settings, strategies as st

from repro.core.compiler import compile_pipeline
from repro.core.constraints import data_dependency_constraints
from repro.dsl.builder import PipelineBuilder, window_sum
from repro.ir.dag import PipelineDAG
from repro.ir.stencil import StencilWindow
from repro.memory.spec import asic_dual_port, asic_single_port
from repro.sim.cycle import simulate_schedule

W, H = 32, 24


@st.composite
def random_pipeline(draw) -> PipelineDAG:
    """A random DAG of 3-8 stages with stencil heights 1-5 and fan-out up to 3."""
    num_stages = draw(st.integers(3, 8))
    builder = PipelineBuilder(f"random-{num_stages}")
    handles = [builder.input("K0")]
    for index in range(1, num_stages):
        # Pick 1 or 2 producers among the existing stages (favouring recent ones).
        num_producers = draw(st.integers(1, min(2, len(handles))))
        producer_indices = sorted(
            draw(
                st.lists(
                    st.integers(0, len(handles) - 1),
                    min_size=num_producers,
                    max_size=num_producers,
                    unique=True,
                )
            )
        )
        expr = None
        for producer_index in producer_indices:
            producer = handles[producer_index]
            size = draw(st.sampled_from([1, 2, 3, 5]))
            term = window_sum(producer, size, size) if size > 1 else producer(0, 0)
            expr = term if expr is None else expr + term
        handles.append(builder.stage(f"K{index}", expr))
    builder.dag.stage(handles[-1].name).is_output = True
    dag = builder.dag
    # Make sure every intermediate stage feeds the output (validation requires
    # it); dangling stages get a pointwise edge into the output stage.
    last = handles[-1].name
    for handle in handles[1:-1]:
        if not dag.consumers_of(handle.name):
            dag.add_edge(handle.name, last, StencilWindow.point())
    return dag.validated()


class TestRandomPipelines:
    @settings(max_examples=10, deadline=None, derandomize=True,
              phases=(Phase.explicit, Phase.generate))
    @given(random_pipeline())
    def test_dual_port_schedules_are_legal(self, dag):
        schedule = compile_pipeline(dag, image_width=W, image_height=H).schedule
        for dep in data_dependency_constraints(dag, W):
            assert schedule.delay(dep.producer, dep.consumer) >= dep.min_delay
        report = simulate_schedule(schedule)
        assert report.ok, report.violations

    @settings(max_examples=8, deadline=None, derandomize=True,
              phases=(Phase.explicit, Phase.generate))
    @given(random_pipeline())
    def test_single_port_schedules_are_legal(self, dag):
        schedule = compile_pipeline(
            dag, image_width=W, image_height=H, memory_spec=asic_single_port()
        ).schedule
        report = simulate_schedule(schedule)
        assert report.ok, report.violations

    @settings(max_examples=8, deadline=None, derandomize=True,
              phases=(Phase.explicit, Phase.generate))
    @given(random_pipeline())
    def test_coalesced_schedules_are_legal_and_never_larger(self, dag):
        plain = compile_pipeline(dag, image_width=W, image_height=H).schedule
        coalesced = compile_pipeline(
            dag, image_width=W, image_height=H, memory_spec=asic_dual_port(), coalescing=True
        ).schedule
        assert coalesced.total_allocated_bits <= plain.total_allocated_bits
        report = simulate_schedule(coalesced)
        assert report.ok, report.violations

    @settings(max_examples=8, deadline=None, derandomize=True,
              phases=(Phase.explicit, Phase.generate))
    @given(random_pipeline())
    def test_throughput_is_one_pixel_per_cycle(self, dag):
        schedule = compile_pipeline(dag, image_width=W, image_height=H).schedule
        report = simulate_schedule(schedule)
        assert report.steady_state_throughput > 0.9
