"""The pre-CompileTarget entry points keep working but warn.

These tests assert the warning filters in-test (``pytest.warns`` plus
``error::DeprecationWarning`` marks on the new-API paths), so the suite can be
run under ``-W error::DeprecationWarning`` — CI does exactly that for this
file — and still prove both halves: old entry points emit the warning, new
ones never do.
"""

import pytest

from repro.api import CompileTarget
from repro.baselines import generate_baseline
from repro.core.compiler import CompiledAccelerator, compile_pipeline
from repro.core.schedule import PipelineSchedule
from repro.service import CompileEngine, CompileRequest

from tests.conftest import TEST_HEIGHT, TEST_WIDTH, build_chain, build_paper_example

W, H = TEST_WIDTH, TEST_HEIGHT


@pytest.fixture
def engine():
    engine = CompileEngine(workers=2)
    yield engine
    engine.shutdown()


class TestLegacyEntryPointsWarnButWork:
    def test_compile_pipeline_kwarg_form(self):
        with pytest.warns(DeprecationWarning, match="CompileTarget"):
            acc = compile_pipeline(build_chain(3), image_width=W, image_height=H)
        assert isinstance(acc, CompiledAccelerator)
        assert acc.schedule.generator == "imagen"

    def test_engine_compile_kwarg_form(self, engine):
        with pytest.warns(DeprecationWarning, match="CompileTarget"):
            acc = engine.compile(build_chain(3), image_width=W, image_height=H)
        assert isinstance(acc, CompiledAccelerator)

    def test_submitting_compile_request(self, engine):
        request = CompileRequest(dag=build_chain(3), image_width=W, image_height=H, label="old")
        with pytest.warns(DeprecationWarning, match="CompileTarget"):
            result = engine.submit(request)
        assert result.ok
        assert result.target.label == "old"
        assert result.request.label == "old"  # legacy view still reconstructable

    def test_batch_of_compile_requests(self, engine):
        requests = [
            CompileRequest(dag=build_chain(3), image_width=W, image_height=H),
            CompileRequest(dag=build_chain(4), image_width=W, image_height=H),
        ]
        with pytest.warns(DeprecationWarning, match="CompileTarget"):
            batch = engine.submit_batch(requests)
        assert all(result.ok for result in batch.results)

    def test_positional_generate_baseline(self):
        with pytest.warns(DeprecationWarning, match="CompileTarget"):
            schedule = generate_baseline("soda", build_chain(3), W, H)
        # The legacy form keeps its legacy return type: a raw schedule.
        assert isinstance(schedule, PipelineSchedule)
        assert schedule.generator == "soda"

    def test_legacy_and_target_forms_agree(self):
        target = CompileTarget(build_paper_example(), image_width=W, image_height=H)
        via_target = compile_pipeline(target)
        with pytest.warns(DeprecationWarning):
            via_kwargs = compile_pipeline(build_paper_example(), image_width=W, image_height=H)
        assert via_target.schedule.start_cycles == via_kwargs.schedule.start_cycles
        assert (
            via_target.schedule.total_allocated_bits
            == via_kwargs.schedule.total_allocated_bits
        )


@pytest.mark.filterwarnings("error::DeprecationWarning")
class TestNewApiIsWarningFree:
    def test_compile_pipeline_target(self):
        acc = compile_pipeline(CompileTarget(build_chain(3), image_width=W, image_height=H))
        assert acc.schedule.generator == "imagen"

    def test_engine_target_paths(self, engine):
        target = CompileTarget(build_chain(3), image_width=W, image_height=H)
        assert engine.submit(target).ok
        assert engine.compile(target).schedule is engine.submit(target).accelerator.schedule
        assert all(r.ok for r in engine.submit_batch([target, target]))

    def test_generate_baseline_target(self):
        target = CompileTarget(
            build_chain(3), image_width=W, image_height=H, generator="darkroom"
        )
        acc = generate_baseline(target)
        assert isinstance(acc, CompiledAccelerator)
        assert acc.schedule.generator == "darkroom"


class TestShimSharpEdges:
    def test_target_plus_kwargs_rejected(self):
        target = CompileTarget(build_chain(3), image_width=W, image_height=H)
        with pytest.raises(TypeError):
            compile_pipeline(target, image_width=W)

    def test_engine_compile_target_plus_kwargs_rejected(self, engine):
        target = CompileTarget(build_chain(3), image_width=W, image_height=H)
        with pytest.raises(TypeError):
            engine.compile(target, coalescing=True)
        with pytest.raises(TypeError):
            engine.compile(target, label="tagged")

    def test_request_metadata_survives_the_shim_round_trip(self, engine):
        request = CompileRequest(
            dag=build_chain(3),
            image_width=W,
            image_height=H,
            metadata={"sweep_id": 7},
        )
        with pytest.warns(DeprecationWarning):
            result = engine.submit(request)
        assert result.target.metadata == {"sweep_id": 7}
        assert result.request.metadata == {"sweep_id": 7}

    def test_kwarg_form_requires_resolution(self):
        with pytest.warns(DeprecationWarning):
            with pytest.raises(TypeError):
                compile_pipeline(build_chain(3))

    def test_baseline_target_with_imagen_generator_rejected(self):
        from repro.errors import BaselineError

        target = CompileTarget(build_chain(3), image_width=W, image_height=H)
        with pytest.raises(BaselineError):
            generate_baseline(target)

    def test_unknown_baseline_name_still_raises(self):
        from repro.errors import BaselineError

        with pytest.warns(DeprecationWarning):
            with pytest.raises(BaselineError):
                generate_baseline("halide", build_chain(3), W, H)
