"""Common infrastructure for baseline generators.

Baseline schedules are first-class citizens of the serving stack: routed
through :func:`repro.core.compile_pipeline`, they are content-addressed by
generator-aware fingerprints, cached in *both* tiers of
:class:`repro.service.cache.CompileCache` (their full line-buffer
configurations serialize via
:meth:`repro.memory.linebuffer.LineBufferConfig.to_payload`, so Darkroom /
SODA / FixyNN designs persist through ``DiskCacheStore`` and across process
boundaries exactly like optimized ones), and compiled on any engine executor
backend, including the process pool.
"""

from __future__ import annotations

import abc

from repro.core.schedule import PipelineSchedule
from repro.errors import BaselineError
from repro.ir.dag import PipelineDAG
from repro.ir.traversal import topological_order
from repro.memory.spec import MemorySpec

BASELINE_NAMES = ("fixynn", "darkroom", "soda")


class BaselineGenerator(abc.ABC):
    """Interface shared by all baseline accelerator generators."""

    name: str = "baseline"

    @abc.abstractmethod
    def generate(
        self,
        dag: PipelineDAG,
        image_width: int,
        image_height: int,
        memory_spec: MemorySpec | None = None,
    ) -> PipelineSchedule:
        """Produce a schedule + line-buffer configuration for the pipeline."""

    # Convenience used by several baselines: data-dependency-only ASAP schedule.
    @staticmethod
    def asap_schedule(
        dag: PipelineDAG, image_width: int, extra_gap: dict[tuple[str, str], int] | None = None
    ) -> dict[str, int]:
        """Earliest start cycles honouring Eq. 1b (plus optional per-edge extra gaps)."""
        extra_gap = extra_gap or {}
        starts: dict[str, int] = {}
        for node in topological_order(dag):
            stage = dag.stage(node)
            if stage.is_input:
                starts[node] = 0
                continue
            best = 0
            for edge in dag.in_edges(node):
                min_delay = (edge.window.height - 1) * image_width + 1
                min_delay += extra_gap.get((edge.producer, edge.consumer), 0)
                best = max(best, starts[edge.producer] + min_delay)
            starts[node] = best
        return starts


def baseline_generator(name: str) -> BaselineGenerator:
    """Instantiate the generator for a baseline name (``fixynn``/``darkroom``/``soda``)."""
    from repro.baselines.darkroom import DarkroomGenerator
    from repro.baselines.fixynn import FixynnGenerator
    from repro.baselines.soda import SodaGenerator

    generators = {
        "fixynn": FixynnGenerator,
        "darkroom": DarkroomGenerator,
        "soda": SodaGenerator,
    }
    if name not in generators:
        raise BaselineError(f"Unknown baseline {name!r}; expected one of {BASELINE_NAMES}")
    return generators[name]()


def generate_baseline(
    target: "CompileTarget | str",
    dag: PipelineDAG | None = None,
    image_width: int | None = None,
    image_height: int | None = None,
    memory_spec: MemorySpec | None = None,
    *,
    cache=None,
):
    """Compile a baseline design point (Darkroom / SODA / FixyNN).

    The primary form takes a :class:`repro.api.CompileTarget` whose
    ``generator`` names a baseline, routes it through
    :func:`repro.core.compile_pipeline` — and therefore through the same
    content-addressed ``cache`` as every other design — and returns a
    :class:`repro.core.compiler.CompiledAccelerator`::

        target = CompileTarget(dag, image_width=480, image_height=320,
                               generator="darkroom")
        acc = generate_baseline(target)           # CompiledAccelerator
        schedule = acc.schedule

    The historical positional form ``generate_baseline(name, dag, width,
    height, spec)`` still works and still returns a raw
    :class:`PipelineSchedule`, but emits a :class:`DeprecationWarning`.
    """
    import warnings

    from repro.api.target import CompileTarget
    from repro.core.compiler import compile_pipeline

    if isinstance(target, CompileTarget):
        if target.generator not in BASELINE_NAMES:
            raise BaselineError(
                f"generate_baseline needs a baseline target; got generator="
                f"{target.generator!r} (expected one of {BASELINE_NAMES})"
            )
        return compile_pipeline(target, cache=cache)

    warnings.warn(
        "generate_baseline(name, dag, width, height, ...) is deprecated; build "
        "a repro.api.CompileTarget with generator=name and call "
        "generate_baseline(target) (returns a CompiledAccelerator)",
        DeprecationWarning,
        stacklevel=2,
    )
    if dag is None or image_width is None or image_height is None:
        raise TypeError("generate_baseline requires dag, image_width and image_height")
    baseline_generator(target)  # validate the name before building a target
    if memory_spec is None:
        # The positional form predates CompileTarget's dual-port default and
        # let each generator pick its own preferred memory (SODA: FIFOs,
        # FixyNN: single-port).  Keep that exact behaviour behind the shim; a
        # CompileTarget's spec, by contrast, is always explicit and adapted
        # by the generator.
        from repro.memory.spec import asic_fifo, asic_single_port

        defaults = {"soda": asic_fifo, "fixynn": asic_single_port}
        memory_spec = defaults.get(target, lambda: None)()
    legacy_target = CompileTarget(
        dag=dag,
        image_width=image_width,
        image_height=image_height,
        memory_spec=memory_spec,
        generator=target,
    )
    return compile_pipeline(legacy_target, cache=cache).schedule
