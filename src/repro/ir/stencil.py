"""Stencil-window geometry.

A stencil window describes which neighbourhood of a producer image a consumer
stage reads to compute one output pixel.  The ImaGen formulation only needs
the window *height* (``SH`` in the paper), but the functional simulator and
the RTL generator need the full 2-D extent and the offsets, so the window is
kept as a first-class object.

Temporal extension
------------------
Multi-frame pipelines (temporal denoise, frame differencing) read the
producer at *frame* offsets as well: the window optionally spans
``min_dt .. max_dt`` frames around the current one.  ``dt = 0`` is the
current frame, ``dt = -1`` the previous frame, and so on; causality requires
``max_dt <= 0`` (checked by :func:`repro.ir.validate.validate_dag`, not here,
so intermediate window arithmetic stays unconstrained).  The temporal fields
default to ``(0, 0)``, so every existing 2-D constructor, comparison and
serialization is unchanged — a purely spatial window is bit-for-bit the same
object it was before the time axis existed.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import GraphError


@dataclass(frozen=True)
class StencilWindow:
    """A rectangular stencil window expressed as pixel offsets.

    The window covers rows ``min_dy .. max_dy`` and columns ``min_dx .. max_dx``
    (inclusive) around the output coordinate.  ``height``/``width`` are the
    quantities used throughout the scheduling math.  The optional temporal
    extent ``min_dt .. max_dt`` (frame offsets, ``0`` = current frame)
    defaults to the degenerate single-frame range, keeping 2-D windows — and
    everything derived from them — exactly as they were.
    """

    min_dx: int
    max_dx: int
    min_dy: int
    max_dy: int
    min_dt: int = 0
    max_dt: int = 0

    def __post_init__(self) -> None:
        if self.max_dx < self.min_dx or self.max_dy < self.min_dy:
            raise GraphError(
                f"Degenerate stencil window: dx=[{self.min_dx},{self.max_dx}] "
                f"dy=[{self.min_dy},{self.max_dy}]"
            )
        if self.max_dt < self.min_dt:
            raise GraphError(
                f"Degenerate stencil window: dt=[{self.min_dt},{self.max_dt}]"
            )

    @property
    def width(self) -> int:
        """Number of columns covered by the window (SW)."""
        return self.max_dx - self.min_dx + 1

    @property
    def height(self) -> int:
        """Number of rows covered by the window (SH in the paper)."""
        return self.max_dy - self.min_dy + 1

    @property
    def depth(self) -> int:
        """Number of frames covered by the window (1 for spatial windows)."""
        return self.max_dt - self.min_dt + 1

    @property
    def is_temporal(self) -> bool:
        """True when the window touches any frame other than the current one."""
        return self.min_dt != 0 or self.max_dt != 0

    @property
    def temporal_depth(self) -> int:
        """Number of *past* frames the window reaches back (0 for spatial).

        This is the frame-buffer sizing quantity: a consumer reading
        ``dt in [-2, 0]`` needs the producer's last 2 frames retained.
        """
        return max(0, -self.min_dt)

    @property
    def size(self) -> int:
        """Number of pixels read per output pixel."""
        return self.width * self.height * self.depth

    @classmethod
    def from_extent(cls, width: int, height: int) -> "StencilWindow":
        """Build a top-left anchored window of the given extent.

        ``from_extent(3, 3)`` covers offsets ``dx in [0, 2]`` and ``dy in [0, 2]``.
        """
        if width < 1 or height < 1:
            raise GraphError(f"Stencil extent must be positive, got {width}x{height}")
        return cls(min_dx=0, max_dx=width - 1, min_dy=0, max_dy=height - 1)

    @classmethod
    def centered(cls, width: int, height: int) -> "StencilWindow":
        """Build a window centered on the output pixel (odd extents recommended)."""
        if width < 1 or height < 1:
            raise GraphError(f"Stencil extent must be positive, got {width}x{height}")
        half_w = (width - 1) // 2
        half_h = (height - 1) // 2
        return cls(
            min_dx=-half_w,
            max_dx=width - 1 - half_w,
            min_dy=-half_h,
            max_dy=height - 1 - half_h,
        )

    @classmethod
    def point(cls) -> "StencilWindow":
        """A 1x1 window (pointwise consumption)."""
        return cls(0, 0, 0, 0)

    @classmethod
    def temporal(cls, width: int, height: int, depth: int, *, centered: bool = True) -> "StencilWindow":
        """A spatial window spanning the current frame and ``depth - 1`` past frames.

        ``temporal(3, 3, 2)`` reads a centered 3x3 window from both the
        current and the previous frame (``dt in [-1, 0]``).
        """
        if depth < 1:
            raise GraphError(f"Temporal depth must be positive, got {depth}")
        spatial = cls.centered(width, height) if centered else cls.from_extent(width, height)
        return cls(
            min_dx=spatial.min_dx,
            max_dx=spatial.max_dx,
            min_dy=spatial.min_dy,
            max_dy=spatial.max_dy,
            min_dt=-(depth - 1),
            max_dt=0,
        )

    def union(self, other: "StencilWindow") -> "StencilWindow":
        """Smallest window covering both windows.

        Used when a consumer references the same producer at several offsets
        (every DSL reference contributes a point; the union is the stencil).
        """
        return StencilWindow(
            min_dx=min(self.min_dx, other.min_dx),
            max_dx=max(self.max_dx, other.max_dx),
            min_dy=min(self.min_dy, other.min_dy),
            max_dy=max(self.max_dy, other.max_dy),
            min_dt=min(self.min_dt, other.min_dt),
            max_dt=max(self.max_dt, other.max_dt),
        )

    def offsets(self) -> list[tuple[int, int]]:
        """All (dx, dy) offsets of the current-frame slice, in raster order."""
        return [
            (dx, dy)
            for dy in range(self.min_dy, self.max_dy + 1)
            for dx in range(self.min_dx, self.max_dx + 1)
        ]

    def offsets3d(self) -> list[tuple[int, int, int]]:
        """All (dt, dy, dx) offsets, oldest frame first, raster order within a frame."""
        return [
            (dt, dy, dx)
            for dt in range(self.min_dt, self.max_dt + 1)
            for dy in range(self.min_dy, self.max_dy + 1)
            for dx in range(self.min_dx, self.max_dx + 1)
        ]

    def spatial(self) -> "StencilWindow":
        """The purely spatial projection (temporal extent collapsed to dt=0)."""
        if not self.is_temporal:
            return self
        return StencilWindow(self.min_dx, self.max_dx, self.min_dy, self.max_dy)

    def normalized(self) -> "StencilWindow":
        """The same extent anchored at offset (0, 0).

        The scheduling formulation is invariant to the anchor; only the extent
        matters.  Normalising makes windows comparable across DSL styles.
        Temporal extents are *not* re-anchored: frame offsets are absolute
        (``dt = -1`` always means the previous frame), so the causal range is
        preserved as-is.
        """
        base = StencilWindow.from_extent(self.width, self.height)
        if not self.is_temporal:
            return base
        return StencilWindow(
            base.min_dx, base.max_dx, base.min_dy, base.max_dy, self.min_dt, self.max_dt
        )

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        if self.is_temporal:
            return f"{self.width}x{self.height}x{self.depth}t"
        return f"{self.width}x{self.height}"
