"""Temporal evaluation pipelines (video-rate extensions of the Table-3 suite).

These two algorithms exercise the time axis end-to-end: their stencil windows
carry a temporal extent, so every generator must provision whole-frame history
buffers (:class:`repro.memory.linebuffer.FrameBufferConfig`) in addition to
the usual line buffers.  They are registered in the live catalog at import —
resolvable through :func:`repro.algorithms.build_algorithm` — but deliberately
kept out of the frozen Table-3 suite (:data:`repro.algorithms.ALGORITHM_NAMES`
and ``table3()``), which reproduces the paper's spatial-only evaluation.
"""

from __future__ import annotations

from repro.dsl import ast
from repro.dsl.builder import PipelineBuilder, temporal_average
from repro.ir.dag import PipelineDAG


def build_temporal_denoise_m() -> PipelineDAG:
    """Spatio-temporal denoise: 3x3 spatial smoothing + 3-frame averaging.

    The smoothed stage is read by both the temporal accumulator and the final
    blend (multi-consumer), and the accumulator reads it two frames into the
    past — the deepest temporal edge in the suite.  Frame weights decay
    geometrically (newest first), the shape of a truncated exponential
    smoother.
    """
    builder = PipelineBuilder("temporal-denoise-m")
    source = builder.input("T0")
    blur = builder.stage(
        "blur",
        (
            source(-1, -1) + source(0, -1) + source(1, -1)
            + source(-1, 0) + source(0, 0) + source(1, 0)
            + source(-1, 1) + source(0, 1) + source(1, 1)
        )
        / 9.0,
    )
    accum = builder.stage("accum", temporal_average(blur, 3, weights=(4.0, 2.0, 1.0)))
    builder.output(
        "blend",
        ast.Call(
            "select",
            (
                ast.Call("abs", (blur(0, 0) - accum(0, 0),)) > 24.0,
                blur(0, 0),
                accum(0, 0),
            ),
        ),
    )
    return builder.build()


def build_frame_diff_m() -> PipelineDAG:
    """Frame differencing / motion mask: |frame - previous frame| thresholded.

    The input is read at the current frame and one frame back, and again by
    the masking stage (multi-consumer on the input), the classic change-
    detection front end.
    """
    builder = PipelineBuilder("frame-diff-m")
    source = builder.input("T0")
    diff = builder.stage("diff", ast.Call("abs", (source(0, 0) - source.prev(1),)))
    motion = builder.stage(
        "motion",
        ast.Call("select", (diff(0, 0) > 16.0, ast.Const(1.0), ast.Const(0.0))),
    )
    builder.output(
        "masked",
        ast.Call(
            "select",
            (motion(0, 0) > 0.5, source(0, 0), source(0, 0) * 0.25),
        ),
    )
    return builder.build()


#: Temporal extension suite (not part of the frozen Table-3 tuple).
TEMPORAL_ALGORITHM_NAMES: tuple[str, ...] = ("temporal-denoise-m", "frame-diff-m")
