"""Unit tests for the unified CompileTarget request object."""

import pytest

from repro.api import CompileTarget, compile_fingerprint
from repro.core.scheduler import SchedulerOptions
from repro.memory.spec import asic_dual_port, asic_single_port

from tests.conftest import TEST_HEIGHT, TEST_WIDTH, build_chain, build_paper_example

W, H = TEST_WIDTH, TEST_HEIGHT

pytestmark = pytest.mark.filterwarnings("error::DeprecationWarning")


def _target(**kwargs) -> CompileTarget:
    kwargs.setdefault("dag", build_paper_example())
    kwargs.setdefault("image_width", W)
    kwargs.setdefault("image_height", H)
    return CompileTarget(**kwargs)


class TestConstruction:
    def test_defaults_resolved(self):
        target = _target()
        assert target.memory_spec.name == asic_dual_port().name
        assert isinstance(target.options, SchedulerOptions)
        assert target.generator == "imagen"
        assert target.is_imagen
        assert target.resolution == (W, H)

    def test_options_are_copied_from_caller(self):
        options = SchedulerOptions(per_stage_coalescing={"K0": True})
        target = _target(options=options)
        assert target.options is not options
        options.per_stage_coalescing["K1"] = True
        assert "K1" not in target.options.per_stage_coalescing

    def test_immutable(self):
        target = _target()
        with pytest.raises(AttributeError):
            target.image_width = 2 * W

    def test_generator_must_be_named(self):
        with pytest.raises(TypeError):
            _target(generator="")

    def test_describe_and_labels(self):
        target = _target(label="svc:req-1")
        assert target.display_label == "svc:req-1"
        assert "svc:req-1" in target.describe()
        assert _target().display_label == "paper-example"

    def test_hashable_by_identity_fingerprint_by_content(self):
        a, b = _target(), _target()
        assert len({a, b}) == 2  # identity hash/eq: usable in sets and dicts
        assert {a: 1}[a] == 1
        assert a != b
        assert a.fingerprint == b.fingerprint  # content identity

    def test_fingerprint_memoized_per_instance(self):
        target = _target()
        assert target.fingerprint is target.fingerprint  # same str object back


class TestDerivations:
    def test_with_options_returns_new_target(self):
        base = _target()
        derived = base.with_options(coalescing=True, coalescing_policy="all")
        assert base.options.coalescing is False
        assert derived.options.coalescing is True
        assert derived.options.coalescing_policy == "all"
        assert derived.dag is base.dag

    def test_with_options_rejects_unknown_fields(self):
        with pytest.raises(TypeError):
            _target().with_options(not_a_knob=True)

    def test_with_resolution_and_spec_and_generator(self):
        base = _target()
        assert base.with_resolution(1920, 1080).resolution == (1920, 1080)
        assert base.with_memory_spec(asic_single_port()).memory_spec.ports == 1
        assert base.with_generator("soda").generator == "soda"
        # The base target is untouched by any derivation.
        assert base.resolution == (W, H)
        assert base.memory_spec.ports == 2
        assert base.is_imagen

    def test_with_label_does_not_change_fingerprint(self):
        base = _target()
        assert base.with_label("other").fingerprint == base.fingerprint


class TestFingerprint:
    def test_matches_module_function(self):
        target = _target()
        assert target.fingerprint == compile_fingerprint(target)
        assert target.fingerprint == compile_fingerprint(
            target.dag, W, H, target.memory_spec, target.options
        )

    def test_generator_aware(self):
        base = _target()
        assert base.with_generator("darkroom").fingerprint != base.fingerprint
        assert (
            base.with_generator("darkroom").fingerprint
            != base.with_generator("soda").fingerprint
        )

    def test_baseline_fingerprint_ignores_scheduler_options(self):
        base = _target(generator="fixynn")
        assert base.with_options(pruning=False).fingerprint == base.fingerprint
        # ...while the optimizer's fingerprint does depend on them.
        ours = _target()
        assert ours.with_options(pruning=False).fingerprint != ours.fingerprint

    def test_derivations_change_fingerprint(self):
        base = _target(dag=build_chain(3))
        assert base.with_resolution(2 * W, H).fingerprint != base.fingerprint
        assert base.with_memory_spec(asic_single_port()).fingerprint != base.fingerprint
        assert base.with_options(coalescing=True).fingerprint != base.fingerprint
