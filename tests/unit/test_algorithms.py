"""Unit tests for the Table-3 algorithm suite and the synthetic pipelines."""

import numpy as np
import pytest

from repro.algorithms import (
    ALGORITHM_NAMES,
    algorithm_names,
    build_algorithm,
    build_synthetic_pipeline,
    register_algorithm,
    table3,
    unregister_algorithm,
)
from repro.algorithms.catalog import algorithm_info
from repro.errors import DSLSemanticError, ReproError
from repro.sim.functional import run_functional

from tests.conftest import TEST_HEIGHT, TEST_WIDTH


class TestCatalog:
    def test_table3_matches_paper(self):
        expected = {
            "canny-s": (9, 0),
            "canny-m": (10, 1),
            "harris-s": (7, 0),
            "harris-m": (7, 1),
            "unsharp-m": (5, 1),
            "xcorr-m": (3, 1),
            "denoise-m": (5, 2),
        }
        rows = {row["algorithm"]: (row["stages"], row["multi_consumer_stages"]) for row in table3()}
        assert rows == expected

    def test_catalog_matches_expected_counts(self):
        for name in ALGORITHM_NAMES:
            info = algorithm_info(name)
            dag = info.build()
            assert len(dag) == info.expected_stages
            assert len(dag.multi_consumer_stages()) == info.expected_multi_consumer_stages

    def test_unknown_algorithm(self):
        with pytest.raises(ReproError):
            build_algorithm("sift")

    def test_single_consumer_variants_are_single_consumer(self):
        assert build_algorithm("canny-s").is_single_consumer()
        assert build_algorithm("harris-s").is_single_consumer()
        assert not build_algorithm("unsharp-m").is_single_consumer()

    def test_all_dags_validate_and_have_io(self):
        for name in ALGORITHM_NAMES:
            dag = build_algorithm(name)
            assert dag.input_stages()
            assert dag.output_stages()

    def test_xcorr_has_tall_stencil(self):
        dag = build_algorithm("xcorr-m")
        heights = [edge.window.height for edge in dag.edges()]
        assert max(heights) == 18


class TestRegistration:
    def test_register_and_build_custom_pipeline(self):
        from tests.conftest import build_two_consumer

        register_algorithm("custom-two-consumer", "registration test", build_two_consumer)
        try:
            info = algorithm_info("custom-two-consumer")
            assert info.expected_stages == 4
            assert info.expected_multi_consumer_stages == 1
            dag = build_algorithm("custom-two-consumer")
            assert len(dag) == info.expected_stages
            assert "custom-two-consumer" in algorithm_names()
        finally:
            unregister_algorithm("custom-two-consumer")
        assert "custom-two-consumer" not in algorithm_names()

    def test_duplicate_name_rejected(self):
        with pytest.raises(ReproError):
            register_algorithm("unsharp-m", "collides with a built-in", lambda: None)

    def test_duplicate_custom_name_rejected_without_replace(self):
        from tests.conftest import build_chain, build_two_consumer

        register_algorithm("custom-dup", "first", build_chain)
        try:
            with pytest.raises(ReproError, match="replace=True"):
                register_algorithm("custom-dup", "second", build_two_consumer)
            assert algorithm_info("custom-dup").description == "first"
        finally:
            unregister_algorithm("custom-dup")

    def test_replace_allows_replacement(self):
        from tests.conftest import build_chain, build_two_consumer

        register_algorithm("custom-ovw", "first", build_chain)
        try:
            register_algorithm("custom-ovw", "second", build_two_consumer, replace=True)
            assert algorithm_info("custom-ovw").description == "second"
        finally:
            unregister_algorithm("custom-ovw")

    def test_overwrite_still_accepted_as_alias(self):
        from tests.conftest import build_chain, build_two_consumer

        register_algorithm("custom-ovw2", "first", build_chain)
        try:
            register_algorithm("custom-ovw2", "second", build_two_consumer, overwrite=True)
            assert algorithm_info("custom-ovw2").description == "second"
        finally:
            unregister_algorithm("custom-ovw2")

    def test_registration_does_not_change_table3(self):
        from tests.conftest import build_chain

        before = table3()
        register_algorithm("custom-t3", "must not appear in Table 3", build_chain)
        try:
            assert table3() == before
        finally:
            unregister_algorithm("custom-t3")

    def test_unregister_unknown_name(self):
        with pytest.raises(ReproError):
            unregister_algorithm("never-registered")

    def test_builtin_suite_cannot_be_unregistered(self):
        with pytest.raises(ReproError, match="built-in"):
            unregister_algorithm("unsharp-m")
        assert "unsharp-m" in algorithm_names()


class TestTemporalSuite:
    def test_temporal_algorithms_resolvable_but_not_in_table3(self):
        from repro.algorithms import TEMPORAL_ALGORITHM_NAMES

        table3_names = {row["algorithm"] for row in table3()}
        for name in TEMPORAL_ALGORITHM_NAMES:
            assert name in algorithm_names()
            assert name not in ALGORITHM_NAMES
            assert name not in table3_names
            dag = build_algorithm(name)
            assert dag.is_temporal()
            info = algorithm_info(name)
            assert len(dag) == info.expected_stages
            assert len(dag.multi_consumer_stages()) == info.expected_multi_consumer_stages


class TestFunctionalBehaviour:
    @pytest.fixture
    def image(self):
        rng = np.random.default_rng(11)
        return rng.integers(0, 256, size=(TEST_HEIGHT, TEST_WIDTH)).astype(np.float64)

    def test_all_algorithms_execute(self, image):
        for name in ALGORITHM_NAMES:
            result = run_functional(build_algorithm(name), image)
            output = result.output()
            assert output.shape == image.shape
            assert np.all(np.isfinite(output))

    def test_unsharp_increases_contrast(self, image):
        result = run_functional(build_algorithm("unsharp-m"), image)
        output = result.output()
        assert output.std() >= image.std() * 0.9

    def test_canny_output_is_binary(self, image):
        result = run_functional(build_algorithm("canny-m"), image)
        assert set(np.unique(result.output())) <= {0.0, 255.0}

    def test_denoise_on_flat_image_is_flat(self):
        flat = np.full((TEST_HEIGHT, TEST_WIDTH), 100.0)
        result = run_functional(build_algorithm("denoise-m"), flat)
        np.testing.assert_allclose(result.output(), 100.0)


class TestSyntheticPipelines:
    def test_exact_stage_count(self):
        for count in (9, 12, 20, 33, 60):
            dag = build_synthetic_pipeline(count)
            assert len(dag) == count

    def test_multi_consumer_fraction_reasonable(self):
        dag = build_synthetic_pipeline(30)
        fraction = len(dag.multi_consumer_stages()) / len(dag)
        assert 0.1 <= fraction <= 0.5

    def test_chain_mode(self):
        dag = build_synthetic_pipeline(10, multi_consumer_interval=0)
        assert dag.is_single_consumer()

    def test_too_small_rejected(self):
        with pytest.raises(DSLSemanticError):
            build_synthetic_pipeline(2)

    def test_synthetic_is_functional(self):
        dag = build_synthetic_pipeline(9)
        image = np.ones((16, 16))
        result = run_functional(dag, image)
        assert np.all(np.isfinite(result.output()))
