#!/usr/bin/env python3
"""Per-stage memory-configuration DSE for Canny-m (the paper's Fig. 10).

Every line buffer in the pipeline can independently be implemented as a plain
dual-port memory (DP) or as a dual-port memory with line coalescing (DPLC).
The script sweeps all combinations at 320p with right-sized (per-design) SRAM
macros, prints each design's memory area and power, and marks the
Pareto-optimal configurations.

The sweep runs through a :class:`CompileEngine`: the 2^k configurations are
submitted as one batch that fans out over a worker pool, and the all-DP
design is served straight from the cache entry warmed by the baseline
compile — the service layer's content-addressed cache at work.

Run:  python examples/design_space_exploration.py
"""

from __future__ import annotations

import time

from repro.algorithms import build_algorithm
from repro.api import CompileTarget
from repro.dse import pareto_front, sweep_memory_configurations
from repro.service import CompileEngine

WIDTH, HEIGHT = 480, 320


def main() -> None:
    # The base target seeds the sweep: every explored configuration is a
    # base.with_options(per_stage_coalescing=...) derivation of it.
    base = CompileTarget(build_algorithm("canny-m"), image_width=WIDTH, image_height=HEIGHT)
    engine = CompileEngine(workers=4)
    started = time.perf_counter()
    points = sweep_memory_configurations(base, engine=engine)
    elapsed = time.perf_counter() - started
    front = pareto_front(points, lambda p: (p.area_mm2, p.power_mw))

    print(f"Canny-m memory-configuration sweep at {WIDTH}x{HEIGHT}")
    print(f"{len(points)} designs explored in {elapsed:.2f}s, {len(front)} Pareto-optimal")
    print(f"engine: {engine.describe()}\n")
    print(f"{'DPLC buffers':<40}{'#DPLC':>6}{'area mm2':>11}{'power mW':>11}{'':>9}")
    for point in sorted(points, key=lambda p: (p.area_mm2, p.power_mw)):
        marker = "<- Pareto" if point in front else ""
        print(
            f"{point.label[:39]:<40}{point.coalesced_stages:>6}"
            f"{point.area_mm2:>11.3f}{point.power_mw:>11.2f}{marker:>10}"
        )

    best_area = min(points, key=lambda p: p.area_mm2)
    best_power = min(points, key=lambda p: p.power_mw)
    print(f"\nsmallest design:     {best_area.label} ({best_area.area_mm2:.3f} mm^2)")
    print(f"lowest-power design: {best_power.label} ({best_power.power_mw:.2f} mW)")

    # A repeated sweep is answered entirely from the cache: every design
    # point hits, and no ILP is solved a second time.
    started = time.perf_counter()
    sweep_memory_configurations(base, engine=engine)
    print(
        f"\nwarm re-sweep: {time.perf_counter() - started:.3f}s "
        f"(hit rate now {engine.hit_rate:.0%})"
    )
    engine.shutdown()

    print(
        "\nThe Pareto frontier is algorithm-specific: rerun with "
        "build_algorithm('denoise-m') to see a different trade-off shape."
    )


if __name__ == "__main__":
    main()
