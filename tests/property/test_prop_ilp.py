"""Property-based tests for the ILP substrate.

The key invariant: the pure-Python branch-and-bound backend and the SciPy
HiGHS backend are both exact solvers, so on any (bounded, feasible) random
integer program they must agree on the optimal objective value, and the
returned assignment must be feasible for the model it solves.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.ilp import highs
from repro.ilp.expr import LinExpr
from repro.ilp.model import Model, SolveStatus
from repro.ilp.simplex import solve_lp
from repro.ilp.solver import solve


def _as_linexpr(value, fallback_variable):
    if isinstance(value, LinExpr):
        return value
    return fallback_variable * 0


@st.composite
def random_bounded_ilp(draw):
    """A small random ILP with bounded integer variables and <= constraints."""
    num_vars = draw(st.integers(2, 4))
    num_cons = draw(st.integers(1, 4))
    model = Model("random")
    variables = [
        model.add_integer_var(f"x{i}", lb=0, ub=draw(st.integers(1, 8))) for i in range(num_vars)
    ]
    for c in range(num_cons):
        coeffs = [draw(st.integers(-3, 3)) for _ in range(num_vars)]
        rhs = draw(st.integers(0, 20))
        expr = _as_linexpr(
            sum(coeff * var for coeff, var in zip(coeffs, variables) if coeff), variables[0]
        )
        model.add_constraint(expr <= rhs, name=f"c{c}")
    objective_coeffs = [draw(st.integers(-4, 4)) for _ in range(num_vars)]
    objective = _as_linexpr(
        sum(coeff * var for coeff, var in zip(objective_coeffs, variables) if coeff), variables[0]
    )
    model.set_objective(objective)
    return model


class TestBackendsAgree:
    @settings(max_examples=40, deadline=None)
    @given(random_bounded_ilp())
    def test_python_backend_matches_highs(self, model):
        python_result = solve(model, backend="python")
        assert python_result.status in (SolveStatus.OPTIMAL, SolveStatus.INFEASIBLE)
        if not highs.is_available():
            pytest.skip("HiGHS unavailable")
        highs_result = solve(model, backend="highs")
        assert python_result.status == highs_result.status
        if python_result.status is SolveStatus.OPTIMAL:
            assert python_result.objective == pytest.approx(highs_result.objective, abs=1e-6)

    @settings(max_examples=40, deadline=None)
    @given(random_bounded_ilp())
    def test_solution_is_feasible_and_integral(self, model):
        result = solve(model, backend="python")
        if result.status is not SolveStatus.OPTIMAL:
            return
        assert model.is_feasible(result.values)
        for var, value in result.values.items():
            if var.integer:
                assert value == int(value)

    @settings(max_examples=40, deadline=None)
    @given(random_bounded_ilp())
    def test_lp_relaxation_is_a_lower_bound(self, model):
        result = solve(model, backend="python")
        if result.status is not SolveStatus.OPTIMAL:
            return
        from repro.ilp.branch_and_bound import _model_matrices

        c, a_ub, b_ub, a_eq, b_eq, lb, ub = _model_matrices(model)
        relax = solve_lp(c, a_ub, b_ub, a_eq, b_eq, lb, ub)
        assert relax.status == "optimal"
        assert relax.objective <= result.objective + 1e-6


class TestSimplexProperties:
    @settings(max_examples=40, deadline=None)
    @given(st.data())
    def test_simplex_matches_scipy(self, data):
        rng_seed = data.draw(st.integers(0, 10_000))
        rng = np.random.default_rng(rng_seed)
        n = data.draw(st.integers(2, 4))
        m = data.draw(st.integers(1, 4))
        c = rng.integers(0, 5, size=n).astype(float)
        a_ub = rng.integers(-2, 4, size=(m, n)).astype(float)
        b_ub = rng.integers(1, 25, size=m).astype(float)
        ours = solve_lp(c, a_ub, b_ub, None, None, np.zeros(n), np.full(n, np.inf))

        from scipy.optimize import linprog

        reference = linprog(c, A_ub=a_ub, b_ub=b_ub, bounds=[(0, None)] * n, method="highs")
        if reference.status == 2:
            assert ours.status == "infeasible"
        elif reference.status == 3:
            assert ours.status == "unbounded"
        else:
            assert ours.status == "optimal"
            assert ours.objective == pytest.approx(reference.fun, abs=1e-6)


class TestRacingParity:
    """The race returns the first finisher's result — which must therefore
    agree with a deterministic solo solve on any model, in status and (when
    optimal) objective value.  Warm starts must never change the answer."""

    @settings(max_examples=30, deadline=None)
    @given(random_bounded_ilp())
    def test_race_matches_python_solo(self, model):
        from repro.ilp.solver import solve_racing

        solo = solve(model, backend="python")
        raced = solve_racing(model)
        assert raced.status == solo.status
        if solo.status is SolveStatus.OPTIMAL:
            assert raced.objective == pytest.approx(solo.objective, abs=1e-6)
            assert model.is_feasible(raced.values)

    @settings(max_examples=30, deadline=None)
    @given(random_bounded_ilp())
    def test_race_with_warm_start_matches_cold(self, model):
        from repro.ilp.model import WarmStart
        from repro.ilp.solver import solve_racing

        cold = solve(model, backend="python")
        warm_start = None
        if cold.status is SolveStatus.OPTIMAL:
            # Seed the race with the known optimum — the strongest hint — and
            # demand the raced answer is unchanged.
            warm_start = WarmStart(
                values={var: value for var, value in cold.values.items()},
                objective=cold.objective,
            )
        raced = solve_racing(model, warm_start=warm_start)
        assert raced.status == cold.status
        if cold.status is SolveStatus.OPTIMAL:
            assert raced.objective == pytest.approx(cold.objective, abs=1e-6)

    @settings(max_examples=20, deadline=None)
    @given(random_bounded_ilp())
    def test_warm_seeded_python_matches_cold(self, model):
        from repro.ilp.branch_and_bound import solve_branch_and_bound
        from repro.ilp.model import WarmStart

        cold = solve_branch_and_bound(model)
        if cold.status is not SolveStatus.OPTIMAL:
            return
        warm = solve_branch_and_bound(
            model,
            warm_start=WarmStart(values=dict(cold.values), objective=cold.objective),
        )
        assert warm.status is SolveStatus.OPTIMAL
        assert warm.objective == pytest.approx(cold.objective, abs=1e-6)
        assert model.is_feasible(warm.values)
        assert warm.warm_start in ("incumbent", "seeded")

    def test_race_agrees_on_unbounded(self):
        from repro.ilp.solver import solve_racing

        model = Model(sense="max")
        x = model.add_integer_var("x", lb=0)
        model.set_objective(x + 0)
        assert solve_racing(model).status is SolveStatus.UNBOUNDED

    def test_race_agrees_on_infeasible(self):
        from repro.ilp.solver import solve_racing

        model = Model("no")
        x = model.add_integer_var("x", lb=0, ub=2)
        model.add_constraint(x >= 4)
        assert solve_racing(model).status is SolveStatus.INFEASIBLE

    def test_mid_race_cancellation_is_silent(self):
        """A pre-cancelled python contestant concedes; the race still answers."""
        import threading

        from repro.errors import SolverCancelled
        from repro.ilp import highs
        from repro.ilp.branch_and_bound import solve_branch_and_bound
        from repro.ilp.solver import solve_racing

        model = Model("cancel-me")
        x = model.add_integer_var("x", lb=0, ub=9)
        y = model.add_integer_var("y", lb=0, ub=9)
        model.add_constraint(x + y >= 7)
        model.set_objective(2 * x + 3 * y)

        # Direct cancellation surfaces as SolverCancelled...
        cancel = threading.Event()
        cancel.set()
        with pytest.raises(SolverCancelled):
            solve_branch_and_bound(model, cancel=cancel)

        # ...but inside a race the loser's concession is swallowed and the
        # winner's result is returned intact.
        result = solve_racing(model)
        assert result.status is SolveStatus.OPTIMAL
        assert result.objective == pytest.approx(14.0)
        if highs.is_available():
            assert result.backend in ("race:python", "race:highs")
